"""Tests for the JDBC adapter and its MiniDB backend."""

import pytest

from repro import Catalog
from repro.adapters.jdbc import JdbcQuery, JdbcSchema, MiniDb, MiniDbError
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import planner_for


@pytest.fixture
def db():
    db = MiniDb("mysql")
    db.create_table("emp", ["id", "dept", "name", "sal"], [
        (1, 10, "Ann", 100), (2, 10, "Bob", 200),
        (3, 20, "Cid", 300), (4, 20, "Dee", None)])
    db.create_table("dept", ["dept", "dname"], [(10, "Sales"), (20, "Eng")])
    return db


class TestMiniDbDirect:
    """MiniDB is its own SQL engine; exercise it standalone."""

    def test_select_where(self, db):
        cols, rows = db.execute("SELECT name FROM emp WHERE sal > 150")
        assert cols == ["name"]
        assert sorted(rows) == [("Bob",), ("Cid",)]

    def test_null_comparison_excluded(self, db):
        _, rows = db.execute("SELECT name FROM emp WHERE sal > 0")
        assert ("Dee",) not in rows

    def test_order_limit_offset(self, db):
        # NULL sorts largest: DESC puts Dee (NULL sal) first
        _, rows = db.execute(
            "SELECT name FROM emp ORDER BY sal DESC LIMIT 2 OFFSET 1")
        assert rows == [("Cid",), ("Bob",)]

    def test_order_nulls(self, db):
        _, rows = db.execute("SELECT sal FROM emp ORDER BY sal")
        assert rows[-1] == (None,)  # NULLS LAST ascending
        _, rows = db.execute("SELECT sal FROM emp ORDER BY sal DESC")
        assert rows[0] == (None,)   # NULLS FIRST descending

    def test_group_by_having(self, db):
        _, rows = db.execute(
            "SELECT dept, COUNT(*) AS c, SUM(sal) AS s FROM emp "
            "GROUP BY dept HAVING COUNT(*) > 1")
        assert sorted(rows) == [(10, 2, 300), (20, 2, 300)]

    def test_aggregate_ignores_nulls(self, db):
        _, rows = db.execute("SELECT AVG(sal) FROM emp")
        assert rows == [(200.0,)]

    def test_joins(self, db):
        _, rows = db.execute(
            "SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.dept "
            "WHERE e.sal >= 200")
        assert sorted(rows) == [("Bob", "Sales"), ("Cid", "Eng")]

    def test_left_join_null_fill(self, db):
        db.create_table("extra", ["dept", "x"], [(99, 1)])
        _, rows = db.execute(
            "SELECT d.dname, x.x FROM dept d LEFT JOIN extra x ON d.dept = x.dept")
        assert all(r[1] is None for r in rows)

    def test_set_ops(self, db):
        _, rows = db.execute(
            "SELECT dept FROM emp UNION SELECT dept FROM dept")
        assert sorted(rows) == [(10,), (20,)]
        _, rows = db.execute(
            "SELECT dept FROM emp EXCEPT SELECT dept FROM dept")
        assert rows == []

    def test_distinct(self, db):
        _, rows = db.execute("SELECT DISTINCT dept FROM emp")
        assert sorted(rows) == [(10,), (20,)]

    def test_derived_table(self, db):
        _, rows = db.execute(
            "SELECT t.name FROM (SELECT name, sal FROM emp WHERE sal > 150) AS t")
        assert sorted(rows) == [("Bob",), ("Cid",)]

    def test_case_expression(self, db):
        _, rows = db.execute(
            "SELECT name, CASE WHEN sal > 150 THEN 'hi' ELSE 'lo' END FROM emp "
            "WHERE sal IS NOT NULL ORDER BY name")
        assert rows[0] == ("Ann", "lo")

    def test_unknown_table(self, db):
        with pytest.raises(MiniDbError):
            db.execute("SELECT 1 FROM ghosts")

    def test_unknown_column(self, db):
        with pytest.raises(MiniDbError):
            db.execute("SELECT wages FROM emp")

    def test_counters(self, db):
        before = db.backend_calls
        db.execute("SELECT 1 FROM emp")
        assert db.backend_calls == before + 1
        assert db.rows_read >= 4


@pytest.fixture
def jdbc_catalog(db):
    catalog = Catalog()
    schema = JdbcSchema("mysql", db, dialect="mysql")
    catalog.add_schema(schema)
    # re-expose existing MiniDB tables through the adapter
    schema.add_jdbc_table("products", ["productId", "name", "price"],
                          [F.integer(False), F.varchar(), F.integer()],
                          [(1, "widget", 10), (2, "gadget", 25), (3, "gizmo", 40)])
    return catalog, schema, db


class TestJdbcPushdown:
    def test_filter_project_pushed(self, jdbc_catalog):
        catalog, schema, db = jdbc_catalog
        p = planner_for(catalog)
        res = p.execute("SELECT name FROM mysql.products WHERE price > 15")
        assert sorted(res.rows) == [("gadget",), ("gizmo",)]
        # the whole thing ran as a single backend call
        plan_text = res.explain()
        assert "JdbcQuery" in plan_text
        assert "EnumerableFilter" not in plan_text

    def test_generated_sql_uses_dialect(self, jdbc_catalog):
        catalog, schema, db = jdbc_catalog
        p = planner_for(catalog)
        res = p.execute("SELECT name FROM mysql.products WHERE price > 15")
        assert "`" in res.explain()  # MySQL backtick quoting

    def test_sort_and_limit_pushed(self, jdbc_catalog):
        catalog, schema, db = jdbc_catalog
        p = planner_for(catalog)
        res = p.execute("SELECT name, price FROM mysql.products "
                        "ORDER BY price DESC LIMIT 2")
        assert res.rows == [("gizmo", 40), ("gadget", 25)]
        assert "JdbcQuery" in res.explain()

    def test_aggregate_pushed(self, jdbc_catalog):
        catalog, schema, db = jdbc_catalog
        p = planner_for(catalog)
        res = p.execute("SELECT COUNT(*), SUM(price) FROM mysql.products")
        assert res.rows == [(3, 75)]
        assert "EnumerableAggregate" not in res.explain()

    def test_same_source_join_pushed(self, jdbc_catalog):
        catalog, schema, db = jdbc_catalog
        schema.add_jdbc_table("stock", ["productId", "qty"],
                              [F.integer(False), F.integer()],
                              [(1, 7), (2, 0)])
        p = planner_for(catalog)
        res = p.execute(
            "SELECT pr.name, st.qty FROM mysql.products pr "
            "JOIN mysql.stock st ON pr.productId = st.productId")
        assert sorted(res.rows) == [("gadget", 0), ("widget", 7)]
        text = res.explain()
        assert "EnumerableJoin" not in text  # join ran inside the backend
        assert text.count("JdbcQuery") == 1

    def test_pushdown_reduces_transferred_rows(self, jdbc_catalog):
        catalog, schema, db = jdbc_catalog
        p = planner_for(catalog)
        db.rows_read = 0
        res = p.execute("SELECT name FROM mysql.products WHERE price = 10")
        assert len(res.rows) == 1
        # context row counters see only the converter output, not the scan
        assert res.context.rows_scanned == 0

    def test_subquery_predicate_not_pushed(self, jdbc_catalog):
        catalog, schema, db = jdbc_catalog
        p = planner_for(catalog)
        res = p.execute(
            "SELECT name FROM mysql.products WHERE price = "
            "(SELECT MAX(price) FROM mysql.products)")
        assert res.rows == [("gizmo",)]


class TestJdbcQueryNode:
    def test_sql_rendering(self, jdbc_catalog):
        catalog, schema, db = jdbc_catalog
        p = planner_for(catalog)
        rel = p.rel("SELECT name FROM mysql.products WHERE price > 15")
        best = p.optimize(rel)
        query = best
        while not isinstance(query, JdbcQuery):
            query = query.inputs[0]
        sql = query.sql()
        assert sql.startswith("SELECT")
        assert "`price` > 15" in sql
