"""Tests for the MongoDB adapter and the Section 7.1 semi-structured views."""

import pytest

from repro import Catalog
from repro.adapters.mongo import MongoError, MongoSchema, MongoStore
from repro.adapters.mongo.adapter import translate_filter
from repro.framework import planner_for
from repro.schema.core import ViewTable

ZIPS = [
    {"city": "SAN FRANCISCO", "loc": [-122.42, 37.77], "pop": 800000, "state": "CA"},
    {"city": "LOS ANGELES", "loc": [-118.24, 34.05], "pop": 3900000, "state": "CA"},
    {"city": "AUSTIN", "loc": [-97.74, 30.27], "pop": 950000, "state": "TX"},
]


@pytest.fixture
def store():
    s = MongoStore()
    s.add_collection("zips", ZIPS)
    return s


class TestMongoStore:
    def test_find_all(self, store):
        assert len(store.find("zips")) == 3

    def test_find_with_operators(self, store):
        docs = store.find("zips", {"pop": {"$gt": 900000}})
        assert {d["city"] for d in docs} == {"LOS ANGELES", "AUSTIN"}
        docs = store.find("zips", {"state": {"$eq": "CA"}, "pop": {"$lt": 1000000}})
        assert [d["city"] for d in docs] == ["SAN FRANCISCO"]

    def test_implicit_equality(self, store):
        assert len(store.find("zips", {"state": "TX"})) == 1

    def test_dotted_path_into_arrays(self, store):
        docs = store.find("zips", {"loc.1": {"$gt": 35.0}})
        assert [d["city"] for d in docs] == ["SAN FRANCISCO"]

    def test_or_operator(self, store):
        docs = store.find("zips", {"$or": [{"state": "TX"}, {"pop": {"$gt": 3000000}}]})
        assert len(docs) == 2

    def test_in_operator(self, store):
        docs = store.find("zips", {"state": {"$in": ["TX", "NV"]}})
        assert len(docs) == 1

    def test_projection(self, store):
        docs = store.find("zips", None, {"city": 1})
        assert docs[0] == {"city": "SAN FRANCISCO"}

    def test_unknown_collection(self, store):
        with pytest.raises(MongoError):
            store.find("ghosts")


@pytest.fixture
def mongo_catalog(store):
    catalog = Catalog()
    schema = MongoSchema("mongo_raw", store)
    catalog.add_schema(schema)
    schema.add_collection("zips")
    return catalog, store


class TestMapColumn:
    def test_paper_view_query(self, mongo_catalog):
        """The exact Section 7.1 query: CAST over _MAP item accesses."""
        catalog, store = mongo_catalog
        p = planner_for(catalog)
        res = p.execute(
            "SELECT CAST(_MAP['city'] AS varchar(20)) AS city,"
            " CAST(_MAP['loc'][1] AS float) AS longitude,"
            " CAST(_MAP['loc'][2] AS float) AS latitude"
            " FROM mongo_raw.zips")
        assert ("SAN FRANCISCO", -122.42, 37.77) in res.rows
        assert res.columns == ["city", "longitude", "latitude"]

    def test_view_over_map_column(self, mongo_catalog):
        """Defining the relational view makes documents joinable."""
        catalog, store = mongo_catalog
        schema = catalog.resolve_schema(["mongo_raw"])
        schema.add_table(ViewTable("zips_rel",
            "SELECT CAST(_MAP['city'] AS varchar(20)) AS city,"
            " CAST(_MAP['state'] AS varchar(2)) AS state,"
            " CAST(_MAP['pop'] AS integer) AS pop FROM mongo_raw.zips"))
        p = planner_for(catalog)
        res = p.execute("SELECT city FROM mongo_raw.zips_rel "
                        "WHERE state = 'CA' ORDER BY pop DESC")
        assert res.rows == [("LOS ANGELES",), ("SAN FRANCISCO",)]

    def test_filter_pushdown_to_find(self, mongo_catalog):
        catalog, store = mongo_catalog
        p = planner_for(catalog)
        store.docs_scanned = 0
        res = p.execute("SELECT _MAP['city'] FROM mongo_raw.zips "
                        "WHERE _MAP['state'] = 'TX'")
        assert res.rows == [("AUSTIN",)]
        text = res.explain()
        assert "find" in text and '"$eq": "TX"' in text

    def test_range_pushdown(self, mongo_catalog):
        catalog, store = mongo_catalog
        p = planner_for(catalog)
        res = p.execute("SELECT _MAP['city'] FROM mongo_raw.zips "
                        "WHERE _MAP['pop'] > 900000 AND _MAP['pop'] < 2000000")
        assert res.rows == [("AUSTIN",)]
        assert "$gt" in res.explain()


class TestFilterTranslation:
    def test_translate_item_comparisons(self):
        from repro.core import rex as rexmod
        from repro.core.rex import RexCall, RexInputRef, literal
        from repro.core.types import DEFAULT_TYPE_FACTORY as F
        map_ref = RexInputRef(0, F.map(F.varchar(), F.any()))
        item = RexCall(rexmod.ITEM, [map_ref, literal("pop")])
        cond = RexCall(rexmod.GREATER_THAN, [item, literal(5)])
        assert translate_filter(cond) == {"pop": {"$gt": 5}}

    def test_nested_item_to_dotted_path(self):
        from repro.core import rex as rexmod
        from repro.core.rex import RexCall, RexInputRef, literal
        from repro.core.types import DEFAULT_TYPE_FACTORY as F
        map_ref = RexInputRef(0, F.map(F.varchar(), F.any()))
        loc = RexCall(rexmod.ITEM, [map_ref, literal("loc")])
        elem = RexCall(rexmod.ITEM, [loc, literal(1)])  # SQL 1-based
        cond = RexCall(rexmod.EQUALS, [elem, literal(-97.74)])
        assert translate_filter(cond) == {"loc.0": {"$eq": -97.74}}

    def test_untranslatable_returns_none(self):
        from repro.core import rex as rexmod
        from repro.core.rex import RexCall, RexInputRef, literal
        from repro.core.types import DEFAULT_TYPE_FACTORY as F
        cond = RexCall(rexmod.LIKE, [RexInputRef(0, F.varchar()), literal("x%")])
        assert translate_filter(cond) is None
