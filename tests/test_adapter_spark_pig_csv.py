"""Tests for the Spark RDD engine + adapter, Pig translation, and CSV."""

import os

import pytest

from repro import Catalog, MemoryTable, Schema
from repro.adapters.pig import PigTranslationError, rel_to_pig
from repro.adapters.spark import SPARK, SparkContext, spark_rules
from repro.core.builder import RelBuilder
from repro.core.rel import JoinRelType
from repro.core.types import DEFAULT_TYPE_FACTORY as F


class TestRDD:
    @pytest.fixture
    def sc(self):
        return SparkContext(default_parallelism=3)

    def test_parallelize_partitions(self, sc):
        rdd = sc.parallelize(range(10))
        assert rdd.num_partitions() == 3
        assert sorted(rdd.collect()) == list(range(10))

    def test_map_filter_lazy(self, sc):
        rdd = sc.parallelize([1, 2, 3, 4]).map(lambda x: x * 2).filter(lambda x: x > 4)
        assert sc.jobs_run == 0
        assert sorted(rdd.collect()) == [6, 8]
        assert sc.jobs_run == 1

    def test_flat_map(self, sc):
        assert sorted(sc.parallelize([1, 2]).flat_map(lambda x: [x, x]).collect()) \
            == [1, 1, 2, 2]

    def test_pair_join_shuffles(self, sc):
        left = sc.parallelize([(1, "a"), (2, "b")])
        right = sc.parallelize([(1, "x"), (1, "y")])
        out = left.join(right).collect()
        assert sorted(out) == [(1, ("a", "x")), (1, ("a", "y"))]
        assert sc.shuffles >= 2

    def test_group_by_key_reduce_by_key(self, sc):
        pairs = sc.parallelize([(1, 10), (2, 20), (1, 5)])
        grouped = dict(pairs.group_by_key().collect())
        assert sorted(grouped[1]) == [5, 10]
        reduced = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert reduced == {1: 15, 2: 20}

    def test_sort_by_union_distinct(self, sc):
        rdd = sc.parallelize([3, 1, 2])
        assert rdd.sort_by(lambda x: x).collect() == [1, 2, 3]
        assert sorted(rdd.union(sc.parallelize([3])).distinct().collect()) == [1, 2, 3]

    def test_take_count(self, sc):
        rdd = sc.parallelize(range(100))
        assert rdd.count() == 100
        assert len(rdd.take(5)) == 5


class TestSparkAdapter:
    @pytest.fixture
    def catalog(self, hr_catalog):
        return hr_catalog

    def test_query_executes_in_spark_convention(self, catalog):
        """Force spark as the only engine for relational operators."""
        from repro.core.rules import standard_logical_rules
        from repro.core.volcano import VolcanoPlanner
        from repro.runtime.nodes import EnumerableTableScanRule
        from repro.runtime.operators import execute_to_list
        b = RelBuilder(catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        b.join_using(JoinRelType.INNER, "deptno")
        rel = b.build()
        rules = [EnumerableTableScanRule()] + spark_rules()
        planner = VolcanoPlanner(rules=rules)
        best = planner.optimize(rel)
        text = best.explain()
        assert "Spark" in text
        rows = execute_to_list(best)
        assert len(rows) == 5

    def test_spark_aggregate(self, catalog):
        from repro.core.volcano import VolcanoPlanner
        from repro.runtime.nodes import EnumerableTableScanRule
        from repro.runtime.operators import execute_to_list
        b = RelBuilder(catalog)
        b.scan("hr", "emps")
        rel = b.aggregate(b.group_key("deptno"), b.count_star("c")).build()
        planner = VolcanoPlanner(rules=[EnumerableTableScanRule()] + spark_rules())
        best = planner.optimize(rel)
        assert "SparkAggregate" in best.explain()
        assert sorted(execute_to_list(best)) == [(10, 3), (20, 1), (30, 1)]

    def test_spark_jobs_counted(self, catalog):
        from repro.adapters.spark import DEFAULT_SPARK_CONTEXT
        from repro.core.volcano import VolcanoPlanner
        from repro.runtime.nodes import EnumerableTableScanRule
        from repro.runtime.operators import execute_to_list
        b = RelBuilder(catalog)
        rel = (b.scan("hr", "emps")
                .filter(b.greater_than(b.field("sal"), b.literal(7000)))
                .build())
        planner = VolcanoPlanner(rules=[EnumerableTableScanRule()] + spark_rules())
        best = planner.optimize(rel)
        before = DEFAULT_SPARK_CONTEXT.jobs_run
        execute_to_list(best)
        assert DEFAULT_SPARK_CONTEXT.jobs_run > before


class TestPigTranslation:
    def test_paper_section3_script(self, hr_catalog):
        """The builder expression from Section 3 renders as the paper's
        Pig script: LOAD / GROUP / FOREACH GENERATE."""
        b = RelBuilder(hr_catalog)
        rel = (b.scan("hr", "emps")
                .project_fields("deptno", "sal")
                .aggregate(b.group_key("deptno"),
                           b.count(False, "c"),
                           b.sum(False, "s", b.field("sal")))
                .build())
        script = rel_to_pig(rel)
        assert "LOAD 'hr.emps'" in script
        assert "GROUP" in script
        assert "FOREACH" in script
        assert "COUNT(" in script and "SUM(" in script
        assert script.strip().endswith("DUMP a3;") or "DUMP" in script

    def test_filter_renders_by_clause(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = (b.scan("hr", "emps")
                .filter(b.greater_than(b.field("sal"), b.literal(100)))
                .build())
        script = rel_to_pig(rel)
        assert "FILTER" in script and "(sal > 100)" in script

    def test_join_renders(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        rel = b.join_using(JoinRelType.INNER, "deptno").build()
        script = rel_to_pig(rel)
        assert "JOIN" in script and "BY (deptno)" in script

    def test_order_limit(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = b.scan("hr", "emps").sort("sal", descending=True).limit(None, 2).build()
        script = rel_to_pig(rel)
        assert "ORDER" in script and "DESC" in script
        assert "LIMIT" in script

    def test_theta_join_unsupported(self, hr_catalog):
        from repro.core import rex as rexmod
        from repro.core.rex import RexCall, RexInputRef
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        cond = RexCall(rexmod.GREATER_THAN, [
            RexInputRef(0, F.integer()), RexInputRef(5, F.integer())])
        rel = b.join(JoinRelType.INNER, cond).build()
        with pytest.raises(PigTranslationError):
            rel_to_pig(rel)


class TestCsvAdapter:
    @pytest.fixture
    def csv_dir(self, tmp_path):
        (tmp_path / "emps.csv").write_text(
            "empid:int,name:string,sal:double\n1,Ann,100.5\n2,Bob,200\n3,Cid,\n")
        (tmp_path / "sniffed.csv").write_text(
            "a,b,c\n1,x,2.5\n2,y,3.5\n")
        return str(tmp_path)

    def test_schema_discovers_files(self, csv_dir):
        from repro.adapters.csv_adapter import CsvSchema
        schema = CsvSchema("csv", csv_dir)
        assert schema.table("emps") is not None
        assert schema.table("sniffed") is not None

    def test_typed_header(self, csv_dir):
        from repro.adapters.csv_adapter import CsvSchema
        table = CsvSchema("csv", csv_dir).table("emps")
        assert table.row_type.field_names == ("empid", "name", "sal")
        rows = list(table.scan())
        assert rows[0] == (1, "Ann", 100.5)
        assert rows[2][2] is None  # empty cell → NULL

    def test_type_sniffing(self, csv_dir):
        from repro.adapters.csv_adapter import CsvSchema
        table = CsvSchema("csv", csv_dir).table("sniffed")
        types = [f.type.type_name.value for f in table.row_type.fields]
        assert types == ["INTEGER", "VARCHAR", "DOUBLE"]

    def test_sql_over_csv(self, csv_dir):
        from repro.adapters.csv_adapter import CsvSchema
        from repro.framework import planner_for
        catalog = Catalog()
        catalog.add_schema(CsvSchema("csv", csv_dir))
        p = planner_for(catalog)
        res = p.execute("SELECT name FROM csv.emps WHERE sal > 150")
        assert res.rows == [("Bob",)]


class TestModelFiles:
    def test_map_schema_with_tables_and_views(self):
        from repro.schema.model import load_model
        model = """
        {"version": "1.0", "defaultSchema": "HR",
         "schemas": [{"name": "HR", "type": "map",
           "tables": [{"name": "emps",
                       "columns": [{"name": "empid", "type": "int"},
                                   {"name": "name", "type": "varchar"}],
                       "rows": [[1, "Ann"], [2, "Bob"]]}],
           "views": [{"name": "first_emp",
                      "sql": "SELECT name FROM hr.emps WHERE empid = 1"}]}]}
        """
        catalog = load_model(model)
        from repro.framework import planner_for
        p = planner_for(catalog)
        assert p.execute("SELECT name FROM emps WHERE empid = 2").rows == [("Bob",)]
        assert p.execute("SELECT * FROM hr.first_emp").rows == [("Ann",)]

    def test_custom_factory_csv(self, tmp_path):
        (tmp_path / "t.csv").write_text("a:int\n5\n")
        from repro.schema.model import load_model
        import json
        model = json.dumps({"schemas": [
            {"name": "files", "type": "custom", "factory": "csv",
             "operand": {"directory": str(tmp_path)}}]})
        catalog = load_model(model)
        from repro.framework import planner_for
        assert planner_for(catalog).execute("SELECT a FROM files.t").rows == [(5,)]

    def test_unknown_factory_rejected(self):
        from repro.schema.model import ModelError, load_model
        with pytest.raises(ModelError):
            load_model('{"schemas": [{"name": "x", "type": "custom", '
                       '"factory": "nope"}]}')

    def test_bad_column_type_rejected(self):
        from repro.schema.model import ModelError, load_model
        with pytest.raises(ModelError):
            load_model('{"schemas": [{"name": "x", "type": "map", "tables": '
                       '[{"name": "t", "columns": [{"name": "a", "type": "blob"}]}]}]}')
