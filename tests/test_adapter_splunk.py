"""Tests for the Splunk adapter — including the Figure 2 scenario."""

import pytest

from repro import Catalog
from repro.adapters.jdbc import JdbcSchema, MiniDb
from repro.adapters.splunk import (
    SplunkError,
    SplunkQuery,
    SplunkSchema,
    SplunkStore,
)
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import planner_for


@pytest.fixture
def store():
    store = SplunkStore()
    store.add_index("orders", [
        {"rowtime": 1, "productId": 1, "units": 30},
        {"rowtime": 2, "productId": 2, "units": 10},
        {"rowtime": 3, "productId": 3, "units": 50},
        {"rowtime": 4, "productId": 1, "units": 5},
    ])
    return store


class TestSplunkStore:
    def test_search_equality_and_ranges(self, store):
        events = store.execute("search index=orders productId=1")
        assert len(events) == 2
        events = store.execute("search index=orders units>=30")
        assert {e["units"] for e in events} == {30, 50}

    def test_search_string_values(self, store):
        store.add_index("logs", [{"level": "ERROR"}, {"level": "INFO"}])
        events = store.execute('search index=logs level="ERROR"')
        assert len(events) == 1

    def test_fields_stage(self, store):
        events = store.execute("search index=orders units>25 | fields rowtime, units")
        assert events == [{"rowtime": 1, "units": 30}, {"rowtime": 3, "units": 50}]

    def test_head_and_sort_stages(self, store):
        events = store.execute("search index=orders | sort -units | head 1")
        assert events[0]["units"] == 50

    def test_lookup_inner_semantics(self, store):
        store.register_lookup("products", ["productId", "name"],
                              lambda: [(1, "widget"), (3, "gizmo")])
        events = store.execute(
            "search index=orders | lookup products productId AS productId OUTPUT name")
        assert {e["name"] for e in events} == {"widget", "gizmo"}
        assert len(events) == 3  # productId=2 dropped (no lookup match)

    def test_missing_search_prefix(self, store):
        with pytest.raises(SplunkError):
            store.execute("fields a")

    def test_unknown_lookup(self, store):
        with pytest.raises(SplunkError):
            store.execute("search index=orders | lookup nothing a AS b OUTPUT c")


@pytest.fixture
def fig2_catalog(store):
    """Orders in Splunk, Products in MySQL — the Figure 2 setup."""
    db = MiniDb("mysql")
    catalog = Catalog()
    mysql = JdbcSchema("mysql", db, dialect="mysql")
    splunk = SplunkSchema("splunk", store)
    catalog.add_schema(mysql)
    catalog.add_schema(splunk)
    mysql.add_jdbc_table("products", ["productId", "name", "price"],
                         [F.integer(False), F.varchar(), F.integer()],
                         [(1, "widget", 10), (2, "gadget", 25), (3, "gizmo", 40)])
    splunk.add_splunk_table("orders", ["rowtime", "productId", "units"],
                            [F.timestamp(False), F.integer(False), F.integer(False)])
    store.register_lookup("products", ["productId", "name", "price"],
                          lambda: db.table("products").rows)
    return catalog, store, db


class TestSplunkPushdown:
    def test_filter_pushed_into_search(self, fig2_catalog):
        catalog, store, _ = fig2_catalog
        p = planner_for(catalog)
        res = p.execute("SELECT rowtime, units FROM splunk.orders WHERE units > 25")
        assert sorted(res.rows) == [(1, 30), (3, 50)]
        assert "units>25" in res.explain()

    def test_projection_becomes_fields_stage(self, fig2_catalog):
        catalog, store, _ = fig2_catalog
        p = planner_for(catalog)
        res = p.execute("SELECT units FROM splunk.orders")
        assert "fields units" in res.explain()

    def test_figure2_join_runs_inside_splunk(self, fig2_catalog):
        """The paper's winning plan: the join migrates into the splunk
        convention via the ODBC lookup."""
        catalog, store, db = fig2_catalog
        p = planner_for(catalog)
        res = p.execute(
            "SELECT o.rowtime, p.name, o.units FROM splunk.orders o "
            "JOIN mysql.products p ON o.productId = p.productId "
            "WHERE o.units > 20")
        assert sorted(res.rows) == [(1, "widget", 30), (3, "gizmo", 50)]
        text = res.explain()
        assert "lookup products" in text       # join inside Splunk
        assert "EnumerableJoin" not in text    # not a client-side join
        assert "units>20" in text              # filter inside the search

    def test_figure2_plan_is_single_splunk_query(self, fig2_catalog):
        catalog, store, db = fig2_catalog
        p = planner_for(catalog)
        rel = p.rel("SELECT o.rowtime, p.name, o.units FROM splunk.orders o "
                    "JOIN mysql.products p ON o.productId = p.productId "
                    "WHERE o.units > 20")
        best = p.optimize(rel)
        leaf = best
        while leaf.inputs:
            leaf = leaf.inputs[0]
        assert isinstance(leaf, SplunkQuery)
        assert leaf.lookup is not None

    def test_join_without_lookup_registration_stays_client_side(self, store):
        db = MiniDb("mysql")
        catalog = Catalog()
        mysql = JdbcSchema("mysql", db)
        splunk = SplunkSchema("splunk", store)
        catalog.add_schema(mysql)
        catalog.add_schema(splunk)
        mysql.add_jdbc_table("products", ["productId", "name"],
                             [F.integer(False), F.varchar()],
                             [(1, "widget")])
        splunk.add_splunk_table("orders", ["rowtime", "productId", "units"],
                                [F.timestamp(False), F.integer(False),
                                 F.integer(False)])
        # NOTE: no register_lookup → SplunkJoinRule cannot fire
        p = planner_for(catalog)
        res = p.execute("SELECT o.units, p.name FROM splunk.orders o "
                        "JOIN mysql.products p ON o.productId = p.productId")
        assert res.rows == [(30, "widget"), (5, "widget")]
        assert "lookup" not in res.explain()

    def test_spl_rendering(self, fig2_catalog):
        catalog, store, _ = fig2_catalog
        p = planner_for(catalog)
        rel = p.rel("SELECT rowtime FROM splunk.orders WHERE units > 25 AND productId = 3")
        best = p.optimize(rel)
        text = best.explain()
        assert "search index=orders" in text
        assert "units>25" in text
        assert "productId=3" in text
