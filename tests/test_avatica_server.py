"""The multi-tenant query server: prepared statements, paged fetch,
admission control, DB-API lifecycle edges, and tenant isolation.

The headline regression here is prepared-statement parameter rebinding:
a cached plan executed with a *new* parameter set must produce the new
answer on both engines — i.e. ``?`` values are late-bound per
execution, never baked into the cached plan.
"""

import threading

import pytest

from repro import Catalog, MemoryTable, Schema
from repro.avatica import (
    OperationalError,
    ProgrammingError,
    QueryServer,
    connect,
)
from repro.core.types import DEFAULT_TYPE_FACTORY as F


# -- prepared statements ------------------------------------------------------


@pytest.mark.parametrize("engine", ["row", "vectorized"])
def test_prepared_statement_rebinds_parameters(hr_catalog, engine):
    """One plan, many parameter sets (the plan-cache safety criterion)."""
    conn = connect(hr_catalog, engine=engine)
    stmt = conn.prepare("SELECT name FROM hr.emps WHERE sal > ?")
    assert stmt.parameter_count == 1

    first = stmt.execute([9000])
    assert sorted(first.fetchall()) == [("Bill",), ("Theodore",)]
    assert not first.cache_hit                      # cold plan

    second = stmt.execute([7500])
    assert second.cache_hit                         # same plan object...
    assert sorted(second.fetchall()) == [           # ...new answer
        ("Bill",), ("Eric",), ("Theodore",)]

    third = stmt.execute([100000])
    assert third.cache_hit
    assert third.fetchall() == []
    conn.close()


@pytest.mark.parametrize("engine", ["row", "vectorized"])
def test_prepared_statement_multiple_parameters(hr_catalog, engine):
    conn = connect(hr_catalog, engine=engine)
    stmt = conn.prepare(
        "SELECT name FROM hr.emps WHERE deptno = ? AND sal < ?")
    assert stmt.parameter_count == 2
    assert sorted(stmt.execute([10, 11000]).fetchall()) == \
        [("Bill",), ("Sebastian",)]
    assert stmt.execute([30, 7000]).fetchall() == [("Victor",)]
    conn.close()


def test_prepared_statement_validates_parameter_count(hr_catalog):
    conn = connect(hr_catalog)
    stmt = conn.prepare("SELECT name FROM hr.emps WHERE sal > ?")
    with pytest.raises(ProgrammingError):
        stmt.execute([])
    with pytest.raises(ProgrammingError):
        stmt.execute([1, 2])
    conn.close()


def test_prepared_statement_survives_catalog_change(hr_catalog):
    conn = connect(hr_catalog)
    stmt = conn.prepare("SELECT COUNT(*) FROM hr.emps")
    assert stmt.execute([]).fetchall() == [(5,)]
    hr_catalog.resolve_schema(["hr"]).add_table(MemoryTable(
        "bonus", ["empid", "amount"], [F.integer(False), F.integer()],
        [(100, 50)]))
    # Re-prepared transparently under the new catalog version.
    cur = stmt.execute([])
    assert not cur.cache_hit
    assert cur.fetchall() == [(5,)]
    assert conn.plan_cache_stats()["invalidations"] >= 1
    conn.close()


def test_sql_level_cache_hit_on_normalized_variant(hr_catalog):
    conn = connect(hr_catalog)
    assert not conn.execute("SELECT dname FROM hr.depts").cache_hit
    warm = conn.execute("select   dname\nfrom hr.depts  -- again")
    assert warm.cache_hit
    assert len(warm.fetchall()) == 4
    conn.close()


# -- paged result fetch -------------------------------------------------------


def test_fetchmany_pages_through_result(hr_catalog):
    conn = connect(hr_catalog, engine="vectorized")
    cur = conn.execute(
        "SELECT empid FROM hr.emps ORDER BY empid")
    assert cur.fetchmany(2) == [(100,), (110,)]
    assert cur.fetchmany(0) == []                   # DB-API edge: no rows
    assert cur.fetchmany(2) == [(150,), (200,)]
    assert cur.fetchmany(99) == [(210,)]            # short final page
    assert cur.fetchmany(2) == []                   # exhausted
    assert cur.rowcount == 5
    conn.close()


def test_fetchone_and_iteration(hr_catalog):
    conn = connect(hr_catalog)
    cur = conn.execute("SELECT empid FROM hr.emps ORDER BY empid DESC")
    assert cur.fetchone() == (210,)
    assert list(cur) == [(200,), (150,), (110,), (100,)]
    assert cur.fetchone() is None
    conn.close()


def test_rowcount_read_early_keeps_rows_fetchable(hr_catalog):
    conn = connect(hr_catalog)
    cur = conn.execute("SELECT empid FROM hr.emps")
    assert cur.rowcount == 5          # drains into the buffer...
    assert len(cur.fetchall()) == 5   # ...but rows are not lost
    conn.close()


def test_description_names_columns(hr_catalog):
    conn = connect(hr_catalog)
    cur = conn.execute("SELECT name AS who, sal FROM hr.emps")
    assert [d[0] for d in cur.description] == ["who", "sal"]
    conn.close()


# -- admission control --------------------------------------------------------


def test_admission_rejects_when_saturated(hr_catalog):
    conn = connect(hr_catalog, max_concurrent_statements=1,
                   admission_timeout=0.05)
    holder = conn.execute("SELECT empid FROM hr.emps")   # slot held: not drained
    with pytest.raises(OperationalError):
        conn.execute("SELECT dname FROM hr.depts")
    holder.close()                                        # slot released
    assert len(conn.execute("SELECT dname FROM hr.depts").fetchall()) == 4
    stats = conn.server.stats()["statements"]
    assert stats["rejected"] == 1
    assert stats["active"] == 0 or stats["active"] == 1   # last cursor open
    conn.close()


def test_draining_a_cursor_releases_its_slot(hr_catalog):
    conn = connect(hr_catalog, max_concurrent_statements=1,
                   admission_timeout=0.05)
    first = conn.execute("SELECT empid FROM hr.emps")
    first.fetchall()                                      # drained: slot freed
    assert len(conn.execute("SELECT dname FROM hr.depts").fetchall()) == 4
    conn.close()


def test_admission_bounds_concurrent_threads(hr_catalog):
    server = QueryServer(max_concurrent_statements=2, admission_timeout=30.0)
    server.register_catalog("hr", hr_catalog)
    results, errors = [], []

    def worker():
        try:
            conn = server.connect("hr")
            rows = conn.execute(
                "SELECT COUNT(*) FROM hr.emps").fetchall()
            results.append(rows[0][0])
            conn.close()
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert results == [5] * 8
    stats = server.stats()["statements"]
    assert stats["admitted"] == 8
    assert stats["peak_active"] <= 2
    assert stats["active"] == 0


# -- DB-API lifecycle edges ---------------------------------------------------


def test_execute_on_closed_connection_raises(hr_catalog):
    conn = connect(hr_catalog)
    cur = conn.cursor()
    conn.close()
    with pytest.raises(ProgrammingError):
        cur.execute("SELECT 1 FROM hr.depts")
    with pytest.raises(ProgrammingError):
        conn.cursor()
    with pytest.raises(ProgrammingError):
        conn.prepare("SELECT 1 FROM hr.depts")


def test_closing_connection_closes_cursors(hr_catalog):
    conn = connect(hr_catalog)
    cur = conn.execute("SELECT empid FROM hr.emps")
    conn.close()
    with pytest.raises(ProgrammingError):
        cur.execute("SELECT empid FROM hr.emps")


def test_closed_cursor_rejects_execute(hr_catalog):
    conn = connect(hr_catalog)
    cur = conn.cursor()
    cur.close()
    with pytest.raises(ProgrammingError):
        cur.execute("SELECT empid FROM hr.emps")
    conn.close()


def test_syntax_error_maps_to_programming_error(hr_catalog):
    conn = connect(hr_catalog)
    with pytest.raises(ProgrammingError):
        conn.execute("SELEKT oops")
    with pytest.raises(ProgrammingError):
        conn.execute("SELECT nope FROM hr.no_such_table")
    conn.close()


def test_context_managers(hr_catalog):
    with connect(hr_catalog) as conn:
        with conn.cursor() as cur:
            cur.execute("SELECT COUNT(*) FROM hr.depts")
            assert cur.fetchone() == (4,)
    with pytest.raises(ProgrammingError):
        conn.execute("SELECT 1 FROM hr.depts")


# -- multi-tenant serving -----------------------------------------------------


def _tenant_catalog(rows):
    catalog = Catalog()
    s = Schema("app")
    catalog.add_schema(s)
    s.add_table(MemoryTable(
        "events", ["id", "who"], [F.integer(False), F.varchar()], rows))
    return catalog


def test_tenants_share_cache_but_not_plans():
    server = QueryServer()
    server.register_catalog("acme", _tenant_catalog([(1, "ada")]))
    server.register_catalog("bravo", _tenant_catalog(
        [(2, "bob"), (3, "eve")]))
    assert server.tenants() == ["acme", "bravo"]

    sql = "SELECT who FROM app.events"
    acme = server.connect("acme")
    bravo = server.connect("bravo")
    assert acme.execute(sql).fetchall() == [("ada",)]
    first_bravo = bravo.execute(sql)
    assert not first_bravo.cache_hit          # acme's plan is not reused
    assert sorted(first_bravo.fetchall()) == [("bob",), ("eve",)]
    assert bravo.execute(sql).cache_hit       # but bravo reuses its own
    assert server.stats()["plan_cache"]["misses"] == 2

    with pytest.raises(KeyError):
        server.connect("zulu")
    acme.close()
    bravo.close()


def test_unnamed_connect_requires_single_tenant():
    server = QueryServer()
    server.register_catalog("a", _tenant_catalog([(1, "x")]))
    assert server.connect().execute(
        "SELECT id FROM app.events").fetchall() == [(1,)]
    server.register_catalog("b", _tenant_catalog([(2, "y")]))
    with pytest.raises(ValueError):
        server.connect()


def test_server_stats_shape(hr_catalog):
    conn = connect(hr_catalog)
    conn.execute("SELECT COUNT(*) FROM hr.emps").fetchall()
    stats = conn.server.stats()
    assert stats["connections_opened"] == 1
    assert stats["statements"]["admitted"] == 1
    assert stats["plan_cache"]["misses"] == 1
    conn.close()
