"""Unit tests for RelBuilder — the Section 3 expression-builder API."""

import pytest

from repro.core.builder import RelBuilder
from repro.core.rel import (
    JoinRelType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalSort,
    LogicalUnion,
)
from repro.runtime.operators import execute_to_list


class TestPaperExample:
    def test_pig_script_equivalent(self, hr_catalog):
        """The paper's Section 3 example: GROUP/FOREACH over employee data."""
        b = RelBuilder(hr_catalog)
        rel = (b.scan("hr", "emps")
                .aggregate(b.group_key("deptno"),
                           b.count(False, "c"),
                           b.sum(False, "s", b.field("sal")))
                .build())
        assert isinstance(rel, LogicalAggregate)
        rows = sorted(execute_to_list(rel))
        assert rows == [(10, 3, 28500), (20, 1, 8000), (30, 1, 6500)]
        assert rel.row_type.field_names == ("deptno", "c", "s")


class TestScans:
    def test_scan_unknown_table(self, hr_catalog):
        with pytest.raises(KeyError):
            RelBuilder(hr_catalog).scan("hr", "nothing")

    def test_scan_without_catalog(self):
        with pytest.raises(ValueError):
            RelBuilder().scan("x")

    def test_values(self):
        b = RelBuilder()
        rel = b.values(["a", "b"], (1, "x"), (2, "y")).build()
        assert execute_to_list(rel) == [(1, "x"), (2, "y")]

    def test_build_empty_stack(self):
        with pytest.raises(ValueError):
            RelBuilder().build()


class TestFilterProject:
    def test_filter_chaining(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = (b.scan("hr", "emps")
                .filter(b.greater_than(b.field("sal"), b.literal(8000)))
                .build())
        assert isinstance(rel, LogicalFilter)
        assert len(execute_to_list(rel)) == 2

    def test_filter_true_is_noop(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = b.scan("hr", "emps").filter().build()
        assert not isinstance(rel, LogicalFilter)

    def test_project_fields(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = b.scan("hr", "emps").project_fields("name", "sal").build()
        assert rel.row_type.field_names == ("name", "sal")

    def test_project_named(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        rel = b.project_named(
            (b.field("name"), "who"),
            (b.call(__import__("repro.core.rex", fromlist=["PLUS"]).PLUS,
                    b.field("sal"), b.literal(1)), "salplus")).build()
        assert rel.row_type.field_names == ("who", "salplus")

    def test_field_unknown_raises(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        with pytest.raises(KeyError):
            b.field("nope")


class TestJoins:
    def test_join_using(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = (b.scan("hr", "emps").scan("hr", "depts")
                .join_using(JoinRelType.INNER, "deptno").build())
        assert isinstance(rel, LogicalJoin)
        rows = execute_to_list(rel)
        assert len(rows) == 5  # every emp matches a dept

    def test_join_condition_field2(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        cond = b.equals(b.field2(0, "deptno"), b.field2(1, "deptno"))
        rel = b.join(JoinRelType.LEFT, cond).build()
        assert rel.join_type is JoinRelType.LEFT

    def test_field2_requires_two_inputs(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        with pytest.raises(ValueError):
            b.field2(0, "deptno")


class TestAggregates:
    def test_group_on_expression_inserts_project(self, hr_catalog):
        from repro.core import rex as rexmod
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        bucket = b.call(rexmod.DIVIDE, b.field("sal"), b.literal(1000))
        rel = b.aggregate(b.group_key(bucket), b.count_star("c")).build()
        assert isinstance(rel, LogicalAggregate)
        assert isinstance(rel.input, LogicalProject)

    def test_distinct_aggregate(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        rel = b.aggregate(b.group_key(),
                          b.count(True, "dc", b.field("deptno"))).build()
        assert execute_to_list(rel) == [(3,)]

    def test_avg_min_max(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        rel = b.aggregate(b.group_key(),
                          b.avg(False, "a", b.field("sal")),
                          b.min("lo", b.field("sal")),
                          b.max("hi", b.field("sal"))).build()
        (row,) = execute_to_list(rel)
        assert row == (8600.0, 6500, 11500)


class TestSetOpsAndSort:
    def test_union_distinct(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").project_fields("deptno")
        b.scan("hr", "depts").project_fields("deptno")
        rel = b.union(all_=False).build()
        assert isinstance(rel, LogicalUnion)
        assert sorted(execute_to_list(rel)) == [(10,), (20,), (30,), (40,)]

    def test_minus(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "depts").project_fields("deptno")
        b.scan("hr", "emps").project_fields("deptno")
        rel = b.minus().build()
        assert execute_to_list(rel) == [(40,)]

    def test_intersect(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "depts").project_fields("deptno")
        b.scan("hr", "emps").project_fields("deptno")
        rel = b.intersect().build()
        assert sorted(execute_to_list(rel)) == [(10,), (20,), (30,)]

    def test_sort_desc_limit(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = (b.scan("hr", "emps").sort("sal", descending=True)
                .limit(None, 2).build())
        assert isinstance(rel, LogicalSort)
        rows = execute_to_list(rel)
        assert [r[3] for r in rows] == [11500, 10000]

    def test_limit_over_plain_rel(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = b.scan("hr", "emps").limit(1, 2).build()
        rows = execute_to_list(rel)
        assert len(rows) == 2
