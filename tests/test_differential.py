"""Differential testing: two independent engines must agree.

MiniDB (the JDBC adapter's backend) interprets SQL ASTs directly over
dict rows; the framework parses, validates, optimizes with Volcano and
executes over the enumerable engine.  Running the same query through
both paths cross-checks the parser, converter, optimizer, rule library
and both executors against each other.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import Catalog, MemoryTable, Schema
from repro.adapters.jdbc import MiniDb
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import planner_for

COLUMNS = ["k", "g", "v", "name"]
ROWS = [
    (i, i % 4, (i * 7) % 50 if i % 5 else None, f"n{i % 6}")
    for i in range(60)
]


@pytest.fixture(scope="module")
def engines():
    db = MiniDb()
    db.create_table("t", COLUMNS, list(ROWS))
    db.create_table("u", ["g", "label"], [(0, "zero"), (1, "one"), (2, "two")])
    catalog = Catalog()
    s = Schema("d")
    catalog.add_schema(s)
    s.add_table(MemoryTable("t", COLUMNS,
                            [F.integer(False), F.integer(False),
                             F.integer(), F.varchar()], list(ROWS)))
    s.add_table(MemoryTable("u", ["g", "label"],
                            [F.integer(False), F.varchar()],
                            [(0, "zero"), (1, "one"), (2, "two")]))
    return db, planner_for(catalog)


def both(engines, sql):
    db, planner = engines
    _, mini_rows = db.execute(sql)
    framework_rows = planner.execute(
        sql.replace("FROM t", "FROM d.t").replace("FROM u", "FROM d.u")
           .replace("JOIN u", "JOIN d.u")).rows
    return sorted(mini_rows, key=repr), sorted(framework_rows, key=repr)


FIXED_QUERIES = [
    "SELECT k FROM t WHERE v > 20",
    "SELECT k, v FROM t WHERE v IS NULL",
    "SELECT g, COUNT(*) AS c, SUM(v) AS s FROM t GROUP BY g",
    "SELECT g, COUNT(*) AS c FROM t GROUP BY g HAVING COUNT(*) > 10",
    "SELECT DISTINCT name FROM t",
    "SELECT k FROM t WHERE name LIKE 'n1%'",
    "SELECT k FROM t WHERE v BETWEEN 10 AND 30",
    "SELECT k FROM t WHERE g IN (1, 3)",
    "SELECT k, CASE WHEN v > 25 THEN 'hi' ELSE 'lo' END FROM t WHERE v IS NOT NULL",
    "SELECT t.k, u.label FROM t JOIN u ON t.g = u.g WHERE t.v > 30",
    "SELECT g FROM t WHERE v > 40 UNION SELECT g FROM u",
    "SELECT k FROM t WHERE v > 10 AND v < 40 AND g = 2",
    "SELECT MIN(v), MAX(v), AVG(v) FROM t",
    "SELECT k + g * 2 FROM t WHERE k < 10",
]


@pytest.mark.parametrize("sql", FIXED_QUERIES)
def test_engines_agree_on_fixed_queries(engines, sql):
    mini, framework = both(engines, sql)
    assert mini == framework


class TestGeneratedPredicates:
    @given(col=st.sampled_from(["k", "g", "v"]),
           op=st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
           value=st.integers(-5, 55),
           conj=st.sampled_from(["AND", "OR"]),
           col2=st.sampled_from(["k", "g", "v"]),
           op2=st.sampled_from(["=", "<", ">"]),
           value2=st.integers(-5, 55))
    @settings(max_examples=80, deadline=None)
    def test_random_two_term_predicates(self, col, op, value, conj,
                                        col2, op2, value2):
        db = MiniDb()
        db.create_table("t", COLUMNS, list(ROWS))
        catalog = Catalog()
        s = Schema("d")
        catalog.add_schema(s)
        s.add_table(MemoryTable("t", COLUMNS,
                                [F.integer(False), F.integer(False),
                                 F.integer(), F.varchar()], list(ROWS)))
        planner = planner_for(catalog)
        predicate = f"{col} {op} {value} {conj} {col2} {op2} {value2}"
        sql = f"SELECT k FROM t WHERE {predicate}"
        _, mini_rows = db.execute(sql)
        framework_rows = planner.execute(
            f"SELECT k FROM d.t WHERE {predicate}").rows
        assert sorted(mini_rows) == sorted(framework_rows)

    @given(keys=st.lists(st.sampled_from(["k", "g", "v"]),
                         min_size=1, max_size=2, unique=True),
           desc=st.booleans(), limit=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_random_order_limit(self, keys, desc, limit):
        db = MiniDb()
        db.create_table("t", COLUMNS, list(ROWS))
        catalog = Catalog()
        s = Schema("d")
        catalog.add_schema(s)
        s.add_table(MemoryTable("t", COLUMNS,
                                [F.integer(False), F.integer(False),
                                 F.integer(), F.varchar()], list(ROWS)))
        planner = planner_for(catalog)
        direction = "DESC" if desc else "ASC"
        order = ", ".join(f"{k} {direction}" for k in keys)
        sql = f"SELECT k, g, v FROM t ORDER BY {order} LIMIT {limit}"
        _, mini_rows = db.execute(sql)
        framework_rows = planner.execute(
            f"SELECT k, g, v FROM d.t ORDER BY {order} LIMIT {limit}").rows
        # ties can order differently between engines; compare as multisets
        # and check the sort keys agree position by position
        key_indexes = [COLUMNS.index(k) for k in keys]
        assert [tuple(r[i] for i in key_indexes if r[i] is not None)
                for r in mini_rows] == \
               [tuple(r[i] for i in key_indexes if r[i] is not None)
                for r in framework_rows]
