"""Cross-engine differential harness: row vs. vectorized.

Every SQL query exercised by ``test_federation_e2e.py`` and the
planner-driven queries of ``test_paper_examples.py`` runs through both
built-in engines — the enumerable (row) engine and the vectorized
(batch/columnar) engine — and the results must be identical:
order-sensitively for queries with a top-level ORDER BY whose keys are
unique, order-insensitively otherwise.

(The streaming examples of Section 7.2 are driven by ``StreamExecutor``
rather than ``Planner.execute`` and have no engine switch, so they are
out of scope here; ``test_paper_examples.py`` still covers them.)
"""

import pytest

from repro import Catalog, MemoryTable, Schema
from repro.adapters.jdbc import JdbcSchema, MiniDb
from repro.adapters.mongo import MongoSchema, MongoStore
from repro.adapters.splunk import SplunkSchema, SplunkStore
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import FrameworkConfig, Planner
from repro.schema.core import ViewTable


def build_federated_catalog() -> Catalog:
    """The multi-backend catalog of ``test_federation_e2e.py``."""
    catalog = Catalog()

    db = MiniDb("mysql")
    mysql = JdbcSchema("mysql", db)
    catalog.add_schema(mysql)
    mysql.add_jdbc_table(
        "products", ["productId", "name", "price"],
        [F.integer(False), F.varchar(), F.integer()],
        [(1, "widget", 10), (2, "gadget", 25), (3, "gizmo", 40)])

    splunk_store = SplunkStore()
    splunk = SplunkSchema("splunk", splunk_store)
    catalog.add_schema(splunk)
    splunk.add_splunk_table(
        "orders", ["rowtime", "productId", "units"],
        [F.timestamp(False), F.integer(False), F.integer(False)],
        [{"rowtime": 1, "productId": 1, "units": 30},
         {"rowtime": 2, "productId": 2, "units": 10},
         {"rowtime": 3, "productId": 1, "units": 50},
         {"rowtime": 4, "productId": 3, "units": 5}])

    mongo_store = MongoStore()
    mongo = MongoSchema("mongo", mongo_store)
    catalog.add_schema(mongo)
    mongo.add_collection("reviews", [
        {"productId": 1, "stars": 5}, {"productId": 1, "stars": 4},
        {"productId": 2, "stars": 2}])
    mongo.add_table(ViewTable(
        "reviews_rel",
        "SELECT CAST(_MAP['productId'] AS integer) AS productId,"
        " CAST(_MAP['stars'] AS integer) AS stars FROM mongo.reviews"))

    memory = Schema("ref")
    catalog.add_schema(memory)
    memory.add_table(MemoryTable(
        "categories", ["productId", "category"],
        [F.integer(False), F.varchar()],
        [(1, "tools"), (2, "toys"), (3, "tools")]))
    return catalog


def build_zips_catalog() -> Catalog:
    """Section 7.1's raw MongoDB zips collection."""
    catalog = Catalog()
    mongo = MongoSchema("mongo_raw", MongoStore())
    catalog.add_schema(mongo)
    mongo.add_collection("zips", [
        {"city": "AMSTERDAM", "loc": [4.9, 52.37], "pop": 921000}])
    return catalog


def build_country_catalog() -> Catalog:
    """Section 7.3's geospatial country table."""
    import repro.geo  # noqa: F401  (registers the ST_* functions)
    catalog = Catalog()
    s = Schema("s")
    catalog.add_schema(s)
    s.add_table(MemoryTable(
        "country", ["name", "boundary"], [F.varchar(), F.varchar()],
        [("Netherlands",
          "POLYGON ((3.3 50.7, 7.2 50.7, 7.2 53.6, 3.3 53.6, 3.3 50.7))"),
         ("Spain",
          "POLYGON ((-9.3 36.0, 3.3 36.0, 3.3 43.8, -9.3 43.8, -9.3 36.0))")]))
    return catalog


def build_figure2_catalog() -> Catalog:
    """Section 4 / Figure 2's Splunk ⋈ MySQL walk-through."""
    db = MiniDb("mysql")
    store = SplunkStore()
    catalog = Catalog()
    catalog.add_schema(JdbcSchema("mysql", db))
    splunk = SplunkSchema("splunk", store)
    catalog.add_schema(splunk)
    catalog.resolve_schema(["mysql"]).add_jdbc_table(
        "products", ["productId", "name"],
        [F.integer(False), F.varchar()], [(1, "widget")])
    splunk.add_splunk_table(
        "orders", ["rowtime", "productId", "units"],
        [F.timestamp(False), F.integer(False), F.integer(False)],
        [{"rowtime": 1, "productId": 1, "units": 30}])
    store.register_lookup("products", ["productId", "name"],
                          lambda: db.table("products").rows)
    return catalog


def build_sales_catalog() -> Catalog:
    """The Section 6 / Figure 4 sales ⋈ products schema (seeded)."""
    import random
    rng = random.Random(42)
    catalog = Catalog()
    s = Schema("s")
    catalog.add_schema(s)
    products = [(pid, f"prod{pid}", rng.choice(["A", "B", "C"]))
                for pid in range(50)]
    sales = []
    for i in range(1000):
        pid = rng.randrange(50)
        discount = rng.choice([None, 5, 10, 15])
        sales.append((i, pid, discount, rng.randrange(1, 20)))
    s.add_table(MemoryTable(
        "products", ["productId", "name", "category"],
        [F.integer(False), F.varchar(), F.varchar()], products))
    s.add_table(MemoryTable(
        "sales", ["saleId", "productId", "discount", "units"],
        [F.integer(False), F.integer(False), F.integer(), F.integer(False)],
        sales))
    return catalog


#: (case id, catalog builder, SQL, ordered?).  ``ordered`` requests an
#: order-sensitive comparison and is only set where the ORDER BY keys
#: are unique (ties may legitimately order differently between engines).
CASES = [
    # -- test_federation_e2e.py ----------------------------------------
    ("fed_two_backend_join", build_federated_catalog,
     "SELECT p.name, SUM(o.units) AS total "
     "FROM splunk.orders o JOIN mysql.products p "
     "ON o.productId = p.productId GROUP BY p.name ORDER BY total DESC",
     True),
    ("fed_three_backend_join", build_federated_catalog,
     "SELECT c.category, SUM(o.units * p.price) AS revenue "
     "FROM splunk.orders o "
     "JOIN mysql.products p ON o.productId = p.productId "
     "JOIN ref.categories c ON p.productId = c.productId "
     "GROUP BY c.category ORDER BY revenue DESC",
     True),
    ("fed_semistructured_join", build_federated_catalog,
     "SELECT p.name, AVG(r.stars) AS rating "
     "FROM mongo.reviews_rel r JOIN mysql.products p "
     "ON r.productId = p.productId GROUP BY p.name ORDER BY rating DESC",
     True),
    ("fed_filters_pushed", build_federated_catalog,
     "SELECT o.rowtime FROM splunk.orders o "
     "JOIN mysql.products p ON o.productId = p.productId "
     "WHERE o.units > 20 AND p.price < 20",
     False),
    ("fed_count_star_join", build_federated_catalog,
     "SELECT COUNT(*) FROM splunk.orders o "
     "JOIN mysql.products p ON o.productId = p.productId",
     False),
    ("fed_union_across_backends", build_federated_catalog,
     "SELECT productId FROM mysql.products "
     "UNION SELECT productId FROM ref.categories",
     False),
    ("fed_right_join_group_on_probe_key", build_federated_catalog,
     # Products 2 and 3 have no orders above 20 units, so the RIGHT
     # join emits NULL-padded rows; grouping on the probe-side key
     # afterwards guards the parallel axis against per-worker
     # duplication of the NULL group.
     "SELECT o.productId, COUNT(*) AS n FROM "
     "(SELECT * FROM splunk.orders WHERE units > 20) o "
     "RIGHT JOIN mysql.products p ON o.productId = p.productId "
     "GROUP BY o.productId",
     False),
    # -- test_paper_examples.py ----------------------------------------
    ("paper_s6_filter_into_join", build_sales_catalog,
     "SELECT products.name, COUNT(*) "
     "FROM s.sales JOIN s.products USING (productId) "
     "WHERE sales.discount IS NOT NULL "
     "GROUP BY products.name "
     "ORDER BY COUNT(*) DESC",
     False),  # counts tie across products; compare as multisets
    ("paper_s71_mongo_zips", build_zips_catalog,
     "SELECT CAST(_MAP['city'] AS varchar(20)) AS city, "
     "CAST(_MAP['loc'][1] AS float) AS longitude, "
     "CAST(_MAP['loc'][2] AS float) AS latitude "
     "FROM mongo_raw.zips",
     False),
    ("paper_s73_geospatial", build_country_catalog,
     'SELECT name FROM ('
     '  SELECT name,'
     "    ST_GeomFromText('POLYGON ((4.82 52.43, 4.97 52.43, 4.97 52.33,"
     "        4.82 52.33, 4.82 52.43))') AS \"Amsterdam\","
     '    ST_GeomFromText(boundary) AS "Country"'
     '  FROM s.country'
     ') WHERE ST_Contains("Country", "Amsterdam")',
     False),
    ("paper_s4_figure2", build_figure2_catalog,
     "SELECT o.rowtime, p.name FROM splunk.orders o "
     "JOIN mysql.products p ON o.productId = p.productId "
     "WHERE o.units > 20",
     False),
    # -- window functions (VectorizedWindow vs the row interpreter) ----
    ("win_row_number", build_sales_catalog,
     "SELECT saleId, productId, "
     "ROW_NUMBER() OVER (PARTITION BY productId ORDER BY saleId) "
     "FROM s.sales",
     False),
    ("win_rank_ties", build_sales_catalog,
     # units repeats heavily within a product: RANK must gap on peers.
     "SELECT saleId, units, "
     "RANK() OVER (PARTITION BY productId ORDER BY units) "
     "FROM s.sales",
     False),
    ("win_dense_rank_desc", build_sales_catalog,
     "SELECT saleId, "
     "DENSE_RANK() OVER (PARTITION BY productId ORDER BY units DESC) "
     "FROM s.sales",
     False),
    ("win_null_ordering", build_sales_catalog,
     # discount is NULL for ~a quarter of sales: NULLS LAST ascending.
     "SELECT saleId, discount, "
     "ROW_NUMBER() OVER (PARTITION BY productId ORDER BY discount, saleId) "
     "FROM s.sales",
     False),
    ("win_lag_lead", build_sales_catalog,
     "SELECT saleId, "
     "LAG(units) OVER (PARTITION BY productId ORDER BY saleId), "
     "LEAD(units, 2, 0) OVER (PARTITION BY productId ORDER BY saleId) "
     "FROM s.sales",
     False),
    ("win_running_sum", build_sales_catalog,
     # Default frame: ROWS UNBOUNDED PRECEDING .. CURRENT ROW.
     "SELECT saleId, "
     "SUM(units) OVER (PARTITION BY productId ORDER BY saleId) "
     "FROM s.sales",
     False),
    ("win_sliding_avg", build_sales_catalog,
     "SELECT saleId, AVG(discount) OVER (PARTITION BY productId "
     "ORDER BY saleId ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) "
     "FROM s.sales",
     False),
    ("win_unbounded_min_max", build_sales_catalog,
     "SELECT saleId, "
     "MIN(units) OVER (PARTITION BY productId ORDER BY saleId "
     "ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING), "
     "MAX(units) OVER (PARTITION BY productId ORDER BY saleId "
     "ROWS BETWEEN CURRENT ROW AND UNBOUNDED FOLLOWING) "
     "FROM s.sales",
     False),
    ("win_global_no_partition", build_sales_catalog,
     # No PARTITION BY: one global partition (gathers when parallel).
     "SELECT saleId, ROW_NUMBER() OVER (ORDER BY saleId) FROM s.sales",
     False),
    ("win_empty_partitions", build_sales_catalog,
     # The filter empties many product partitions entirely.
     "SELECT saleId, productId, "
     "COUNT(*) OVER (PARTITION BY productId ORDER BY saleId "
     "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) "
     "FROM s.sales WHERE units > 18",
     False),
    # -- partition-aware distinct set operations -----------------------
    ("setop_union_distinct", build_sales_catalog,
     "SELECT productId FROM s.sales WHERE units > 10 "
     "UNION SELECT productId FROM s.products",
     False),
    ("setop_union_computed", build_sales_catalog,
     # A computed column defeats scan elision: a real hash shuffle.
     "SELECT productId * 2 FROM s.products "
     "UNION SELECT productId FROM s.sales",
     False),
    ("setop_intersect_distinct", build_sales_catalog,
     "SELECT productId FROM s.sales WHERE units > 10 "
     "INTERSECT SELECT productId FROM s.sales WHERE discount IS NOT NULL",
     False),
    ("setop_except_distinct", build_sales_catalog,
     "SELECT productId FROM s.products "
     "EXCEPT SELECT productId FROM s.sales WHERE units > 15",
     False),
]

#: The window/set-op subset additionally runs on both worker backends.
_WORKER_AXIS_CASES = [c for c in CASES
                      if c[0].startswith(("win_", "setop_"))]


_CATALOG_CACHE = {}
_PARALLEL_CACHE = {}


def _planners(builder):
    """One (row, vectorized) planner pair per catalog, module-cached."""
    if builder not in _CATALOG_CACHE:
        catalog = builder()
        _CATALOG_CACHE[builder] = (
            Planner(FrameworkConfig(catalog)),
            Planner(FrameworkConfig(catalog, engine="vectorized")))
    return _CATALOG_CACHE[builder]


def _parallel_planner(builder, parallelism, partitioned_scans=True,
                      workers="thread"):
    """A parallel vectorized planner sharing the cached catalog."""
    key = (builder, parallelism, partitioned_scans, workers)
    if key not in _PARALLEL_CACHE:
        catalog = _planners(builder)[0].catalog
        _PARALLEL_CACHE[key] = Planner(FrameworkConfig(
            catalog, engine="vectorized", parallelism=parallelism,
            partitioned_scans=partitioned_scans, workers=workers))
    return _PARALLEL_CACHE[key]


@pytest.mark.parametrize(
    "builder,sql,ordered",
    [pytest.param(b, sql, ordered, id=case_id)
     for case_id, b, sql, ordered in CASES])
def test_row_and_vectorized_engines_agree(builder, sql, ordered):
    row_planner, vec_planner = _planners(builder)
    row_result = row_planner.execute(sql)
    vec_result = vec_planner.execute(sql)
    assert row_result.columns == vec_result.columns
    if ordered:
        assert row_result.rows == vec_result.rows
    else:
        assert sorted(row_result.rows, key=repr) == \
            sorted(vec_result.rows, key=repr)


#: Worker counts for the parallel axis; 4-worker runs are additionally
#: marked slow so quick runs stay bounded (-m "parallel and not slow").
PARALLELISMS = [
    pytest.param(2, id="p2"),
    pytest.param(4, id="p4", marks=pytest.mark.slow),
]


@pytest.mark.parallel
@pytest.mark.parametrize("parallelism", PARALLELISMS)
@pytest.mark.parametrize(
    "builder,sql,ordered",
    [pytest.param(b, sql, ordered, id=case_id)
     for case_id, b, sql, ordered in CASES])
def test_parallel_agrees_with_serial_and_row(builder, sql, ordered,
                                             parallelism):
    """The parallel axis of the differential harness: every case must
    produce identical rows under the row engine, the serial vectorized
    engine and the partitioned vectorized engine — exactly ordered
    where a collation is required, as multisets otherwise."""
    row_planner, vec_planner = _planners(builder)
    par_planner = _parallel_planner(builder, parallelism)
    row_result = row_planner.execute(sql)
    vec_result = vec_planner.execute(sql)
    par_result = par_planner.execute(sql)
    assert row_result.columns == par_result.columns
    if ordered:
        assert par_result.rows == row_result.rows
        assert par_result.rows == vec_result.rows
    else:
        expected = sorted(row_result.rows, key=repr)
        assert sorted(par_result.rows, key=repr) == expected
        assert sorted(vec_result.rows, key=repr) == expected


@pytest.mark.parallel
@pytest.mark.parametrize("workers", ["thread", "process"])
@pytest.mark.parametrize("parallelism", PARALLELISMS)
@pytest.mark.parametrize(
    "builder,sql,ordered",
    [pytest.param(b, sql, ordered, id=case_id)
     for case_id, b, sql, ordered in _WORKER_AXIS_CASES])
def test_window_and_setop_worker_backends_agree(builder, sql, ordered,
                                                parallelism, workers):
    """Windows and distinct set operations must be exact on both worker
    backends: thread partitions share batches in-process, process
    partitions cross the columnar wire format."""
    row_planner, _vec = _planners(builder)
    par_planner = _parallel_planner(builder, parallelism, workers=workers)
    row_result = row_planner.execute(sql)
    par_result = par_planner.execute(sql)
    assert row_result.columns == par_result.columns
    assert sorted(par_result.rows, key=repr) == \
        sorted(row_result.rows, key=repr)


@pytest.mark.parallel
def test_window_plans_run_shard_local_on_copartitioned_input():
    """A window over a partitionable scan must elide the shuffle: the
    PARTITION BY keys are served co-partitioned by the backend, and no
    rows cross an exchange edge."""
    par = _parallel_planner(build_sales_catalog, 2)
    sql = ("SELECT saleId, SUM(units) OVER "
           "(PARTITION BY productId ORDER BY saleId) FROM s.sales")
    plan = par.optimize(par.rel(sql))
    text = plan.explain()
    assert "VectorizedWindow" in text
    assert "PartitionedScan" in text
    assert "HashExchange" not in text
    result = par.execute(sql)
    assert result.context.rows_shuffled == 0


@pytest.mark.parallel
def test_distinct_setop_plans_hash_exchange_not_gather():
    """Distinct UNION with a computed input column cannot elide: it
    must hash-exchange on the full row and dedup per worker, never
    gather the inputs to a single stream below the union."""
    par = _parallel_planner(build_sales_catalog, 2)
    plan = par.optimize(par.rel(
        "SELECT productId * 2 FROM s.products "
        "UNION SELECT productId FROM s.sales"))
    text = plan.explain()
    assert "HashExchange" in text
    union_pos = text.index("VectorizedUnion")
    # The only gather is the root one, above the union.
    assert "SingletonExchange" not in text[union_pos:]


@pytest.mark.parallel
def test_parallel_plans_actually_partition():
    """Guard against the parallel axis silently re-running the serial
    plan: a partitionable aggregation must plan into partitioned scans
    (the backend deals out shards directly) with a gathering exchange;
    when the backend cannot partition, a HashExchange shuffle."""
    par = _parallel_planner(build_sales_catalog, 2)
    plan = par.optimize(par.rel(
        "SELECT productId, SUM(units) FROM s.sales GROUP BY productId"))
    text = plan.explain()
    assert "PartitionedScan" in text or "HashExchange" in text
    assert "SingletonExchange" in text


@pytest.mark.parallel
def test_partitioned_scan_elision_is_optional():
    """partitioned_scans=False restores the gather-then-shard baseline
    (shuffle through a HashExchange instead of adapter partitions)."""
    par = _parallel_planner(build_sales_catalog, 2,
                            partitioned_scans=False)
    plan = par.optimize(par.rel(
        "SELECT productId, SUM(units) FROM s.sales GROUP BY productId"))
    text = plan.explain()
    assert "HashExchange" in text
    assert "PartitionedScan" not in text


def test_vectorized_plans_actually_vectorize():
    """Guard against the differential suite silently comparing the row
    engine against itself: a single-backend aggregation must plan into
    vectorized operators."""
    _row, vec = _planners(build_sales_catalog)
    plan = vec.optimize(vec.rel(
        "SELECT category, COUNT(*) FROM s.products GROUP BY category"))
    assert "Vectorized" in plan.explain()


def test_engine_config_is_validated():
    with pytest.raises(ValueError, match="unknown engine"):
        Planner(FrameworkConfig(Catalog(), engine="turbo"))
