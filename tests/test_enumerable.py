"""Unit tests for the LINQ4J-style Enumerable API (Section 7.4)."""

import pytest

from repro.runtime.enumerable import Enumerable


class TestConstruction:
    def test_of_and_iter(self):
        assert list(Enumerable.of([1, 2, 3])) == [1, 2, 3]

    def test_reusable(self):
        e = Enumerable.of([1, 2])
        assert list(e) == [1, 2]
        assert list(e) == [1, 2]  # traversable twice, as IEnumerable

    def test_range(self):
        assert Enumerable.range(5, 3).to_list() == [5, 6, 7]

    def test_empty(self):
        assert Enumerable.empty().to_list() == []


class TestProjectionRestriction:
    def test_select(self):
        assert Enumerable.of([1, 2]).select(lambda x: x * 10).to_list() == [10, 20]

    def test_where(self):
        assert Enumerable.of(range(10)).where(lambda x: x % 3 == 0).to_list() == [0, 3, 6, 9]

    def test_select_many(self):
        result = Enumerable.of([1, 2]).select_many(lambda x: [x, -x]).to_list()
        assert result == [1, -1, 2, -2]

    def test_lazy_evaluation(self):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        e = Enumerable.of([1, 2, 3]).select(spy)
        assert calls == []  # nothing evaluated yet
        e.take(1).to_list()
        assert calls == [1]  # short-circuit


class TestJoins:
    def test_hash_join(self):
        depts = Enumerable.of([(10, "Sales"), (20, "Eng")])
        emps = Enumerable.of([("Ann", 10), ("Bob", 20), ("Cid", 10)])
        result = emps.join(depts, lambda e: e[1], lambda d: d[0],
                           lambda e, d: (e[0], d[1])).to_list()
        assert result == [("Ann", "Sales"), ("Bob", "Eng"), ("Cid", "Sales")]

    def test_left_join(self):
        depts = Enumerable.of([(10, "Sales")])
        emps = Enumerable.of([("Ann", 10), ("Zed", 99)])
        result = emps.left_join(depts, lambda e: e[1], lambda d: d[0],
                                lambda e, d: (e[0], d[1] if d else None)).to_list()
        assert result == [("Ann", "Sales"), ("Zed", None)]

    def test_group_join(self):
        depts = Enumerable.of([(10,), (20,)])
        emps = Enumerable.of([("Ann", 10), ("Bob", 10)])
        result = depts.group_join(emps, lambda d: d[0], lambda e: e[1],
                                  lambda d, es: (d[0], len(es))).to_list()
        assert result == [(10, 2), (20, 0)]

    def test_cartesian(self):
        out = Enumerable.of([1, 2]).cartesian(Enumerable.of(["a"]),
                                              lambda a, b: (a, b)).to_list()
        assert out == [(1, "a"), (2, "a")]


class TestGroupingOrdering:
    def test_group_by(self):
        groups = Enumerable.of([1, 2, 3, 4]).group_by(lambda x: x % 2).to_list()
        assert groups == [(1, [1, 3]), (0, [2, 4])]

    def test_group_by_with_result(self):
        out = Enumerable.of([1, 2, 3, 4]).group_by(
            lambda x: x % 2, lambda k, xs: (k, sum(xs))).to_list()
        assert out == [(1, 4), (0, 6)]

    def test_order_by(self):
        assert Enumerable.of([3, 1, 2]).order_by(lambda x: x).to_list() == [1, 2, 3]
        assert Enumerable.of([3, 1, 2]).order_by(lambda x: x, descending=True).to_list() == [3, 2, 1]

    def test_reverse(self):
        assert Enumerable.of([1, 2, 3]).reverse().to_list() == [3, 2, 1]


class TestPartitioning:
    def test_take_skip(self):
        e = Enumerable.range(0, 10)
        assert e.take(3).to_list() == [0, 1, 2]
        assert e.skip(8).to_list() == [8, 9]
        assert e.skip(3).take(2).to_list() == [3, 4]

    def test_take_while_skip_while(self):
        e = Enumerable.of([1, 2, 9, 1])
        assert e.take_while(lambda x: x < 5).to_list() == [1, 2]
        assert e.skip_while(lambda x: x < 5).to_list() == [9, 1]


class TestSetOps:
    def test_distinct_preserves_order(self):
        assert Enumerable.of([3, 1, 3, 2, 1]).distinct().to_list() == [3, 1, 2]

    def test_union_intersect_except(self):
        a = Enumerable.of([1, 2, 3])
        b = Enumerable.of([2, 3, 4])
        assert a.union(b).to_list() == [1, 2, 3, 4]
        assert a.intersect(b).to_list() == [2, 3]
        assert a.except_(b).to_list() == [1]

    def test_concat_keeps_duplicates(self):
        assert Enumerable.of([1]).concat(Enumerable.of([1])).to_list() == [1, 1]

    def test_zip(self):
        out = Enumerable.of([1, 2]).zip(Enumerable.of(["a", "b", "c"]),
                                        lambda a, b: f"{a}{b}").to_list()
        assert out == ["1a", "2b"]


class TestAggregation:
    def test_aggregate_fold(self):
        assert Enumerable.of([1, 2, 3]).aggregate(10, lambda acc, x: acc + x) == 16

    def test_count_sum_min_max_average(self):
        e = Enumerable.of([4, 1, 3])
        assert e.count() == 3
        assert e.count(lambda x: x > 1) == 2
        assert e.sum() == 8
        assert e.min() == 1
        assert e.max() == 4
        assert e.average() == pytest.approx(8 / 3)

    def test_aggregates_skip_none(self):
        e = Enumerable.of([1, None, 3])
        assert e.sum() == 4
        assert e.min() == 1
        assert Enumerable.of([None]).sum() is None
        assert Enumerable.of([]).average() is None


class TestElementAccess:
    def test_first(self):
        assert Enumerable.of([1, 2]).first() == 1
        assert Enumerable.of([1, 2]).first(lambda x: x > 1) == 2
        with pytest.raises(ValueError):
            Enumerable.empty().first()

    def test_first_or_default(self):
        assert Enumerable.empty().first_or_default(42) == 42

    def test_single(self):
        assert Enumerable.of([7]).single() == 7
        with pytest.raises(ValueError):
            Enumerable.of([1, 2]).single()

    def test_element_at(self):
        assert Enumerable.of([5, 6, 7]).element_at(1) == 6
        with pytest.raises(IndexError):
            Enumerable.of([5]).element_at(3)


class TestQuantifiers:
    def test_any_all_contains(self):
        e = Enumerable.of([1, 2, 3])
        assert e.any()
        assert e.any(lambda x: x == 2)
        assert not e.any(lambda x: x > 5)
        assert e.all(lambda x: x > 0)
        assert not e.all(lambda x: x > 1)
        assert e.contains(3)
        assert not e.contains(9)

    def test_to_dict(self):
        d = Enumerable.of([("a", 1), ("b", 2)]).to_dict(
            lambda kv: kv[0], lambda kv: kv[1])
        assert d == {"a": 1, "b": 2}


class TestComposedPipeline:
    def test_query_style_chain(self):
        """The LINQ sales-report idiom: filter → join → group → order."""
        sales = Enumerable.of([
            ("widget", 2, 5.0), ("gadget", 1, 20.0), ("widget", 3, 5.0)])
        products = Enumerable.of([("widget", "tools"), ("gadget", "toys")])
        report = (sales
                  .join(products, lambda s: s[0], lambda p: p[0],
                        lambda s, p: (p[1], s[1] * s[2]))
                  .group_by(lambda row: row[0],
                            lambda cat, rows: (cat, sum(r[1] for r in rows)))
                  .order_by(lambda row: row[1], descending=True)
                  .to_list())
        assert report == [("tools", 25.0), ("toys", 20.0)]
