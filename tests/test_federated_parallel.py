"""Federated partition-pushdown scans: differential + golden coverage.

The multi-adapter axis of the parallel differential suite: queries
joining jdbc, memory, and splunk backends run at parallelism 1/2/4,
with partition pushdown both on and off, and every variant must return
the serial row engine's rows.  Golden snapshots pin the partitioned
plan shape for the two reference backends (jdbc: predicate rendered
into the shard SQL; memory: hash buckets served natively), and unit
tests check the shard-level contracts — the ``MOD(HASH(key), n) = i``
predicate reaching the backend, disjoint shard coverage, and the
capability declarations the planner keys off.
"""

import os
import pathlib

import pytest

from repro import Catalog, MemoryTable, Schema
from repro.adapters.capability import SCAN_ONLY, partition_of
from repro.adapters.jdbc import JdbcSchema, MiniDb
from repro.adapters.splunk import SplunkSchema, SplunkStore
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import FrameworkConfig, Planner
from repro.runtime.vectorized.partitioned import PartitionedScan

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden_plans"

N_LINEITEMS = 2400
N_PARTS = 120


def build_federated_catalog() -> Catalog:
    """jdbc + memory + splunk with deterministic data, NULL join keys
    included (a NULL-keyed probe row must survive partitioning)."""
    catalog = Catalog()

    db = MiniDb("db")
    jdbc = JdbcSchema("db", db)
    catalog.add_schema(jdbc)
    jdbc.add_jdbc_table(
        "lineitems", ["part_id", "qty"],
        [F.bigint(), F.bigint(False)],
        [(None if i % 97 == 0 else i % N_PARTS, 1 + i % 7)
         for i in range(N_LINEITEMS)])

    mem = Schema("mem")
    catalog.add_schema(mem)
    mem.add_table(MemoryTable(
        "parts", ["part_id", "category"],
        [F.bigint(False), F.varchar()],
        [(i, f"cat{i % 5}") for i in range(N_PARTS)]))

    store = SplunkStore()
    splunk = SplunkSchema("splunk", store)
    catalog.add_schema(splunk)
    splunk.add_splunk_table(
        "shipments", ["part_id", "carrier"],
        [F.bigint(False), F.varchar()],
        [{"part_id": i % N_PARTS, "carrier": f"c{i % 3}"}
         for i in range(300)])
    return catalog


QUERIES = {
    "join_on_partition_key": (
        "SELECT l.part_id, SUM(l.qty) AS total FROM db.lineitems l "
        "JOIN mem.parts p ON l.part_id = p.part_id GROUP BY l.part_id"),
    "rollup_after_join": (
        "SELECT p.category, SUM(l.qty) AS total FROM db.lineitems l "
        "JOIN mem.parts p ON l.part_id = p.part_id GROUP BY p.category"),
    "filtered_join": (
        "SELECT l.part_id, COUNT(*) AS c FROM db.lineitems l "
        "JOIN mem.parts p ON l.part_id = p.part_id "
        "WHERE l.qty > 3 GROUP BY l.part_id"),
    "left_join_null_keys": (
        "SELECT p.category, COUNT(l.qty) AS c FROM db.lineitems l "
        "LEFT JOIN mem.parts p ON l.part_id = p.part_id "
        "GROUP BY p.category"),
    "three_backend_join": (
        "SELECT p.category, COUNT(*) AS c FROM splunk.shipments sh "
        "JOIN mem.parts p ON sh.part_id = p.part_id "
        "JOIN db.lineitems l ON l.part_id = p.part_id "
        "GROUP BY p.category"),
}

_CATALOG = None
_PLANNERS = {}


def _planner(engine="vectorized", parallelism=1, partitioned_scans=True):
    global _CATALOG
    if _CATALOG is None:
        _CATALOG = build_federated_catalog()
    key = (engine, parallelism, partitioned_scans)
    if key not in _PLANNERS:
        _PLANNERS[key] = Planner(FrameworkConfig(
            _CATALOG, engine=engine, parallelism=parallelism,
            partitioned_scans=partitioned_scans))
    return _PLANNERS[key]


def _rows(sql, **kwargs):
    return sorted(_planner(**kwargs).execute(sql).rows, key=repr)


# ---------------------------------------------------------------------------
# Differential: every parallelism × pushdown variant matches the row engine
# ---------------------------------------------------------------------------

@pytest.mark.parallel
@pytest.mark.parametrize("name", sorted(QUERIES))
@pytest.mark.parametrize("parallelism", [1, 2, 4])
@pytest.mark.parametrize("partitioned_scans", [True, False])
def test_federated_differential(name, parallelism, partitioned_scans):
    sql = QUERIES[name]
    expected = _rows(sql, engine="row")
    got = _rows(sql, parallelism=parallelism,
                partitioned_scans=partitioned_scans)
    assert got == expected, (
        f"{name}: parallelism={parallelism} "
        f"partitioned_scans={partitioned_scans} diverged from row engine")


# ---------------------------------------------------------------------------
# Plan shape: elision on/off
# ---------------------------------------------------------------------------

def _plan(sql, **kwargs):
    planner = _planner(**kwargs)
    return planner.optimize(planner.rel(sql))


@pytest.mark.parallel
def test_partitioned_scans_elide_exchanges():
    text = _plan(QUERIES["join_on_partition_key"], parallelism=4).explain()
    assert "PartitionedScan" in text
    assert "HashExchange" not in text


@pytest.mark.parallel
def test_partitioned_scans_off_restores_shuffle():
    text = _plan(QUERIES["join_on_partition_key"], parallelism=4,
                 partitioned_scans=False).explain()
    assert "HashExchange" in text
    assert "PartitionedScan" not in text


@pytest.mark.parallel
def test_partitioned_join_shuffles_nothing():
    res = _planner(parallelism=4).execute(QUERIES["join_on_partition_key"])
    assert res.context.rows_shuffled == 0
    res = _planner(parallelism=4, partitioned_scans=False).execute(
        QUERIES["join_on_partition_key"])
    assert res.context.rows_shuffled > 0


# ---------------------------------------------------------------------------
# Shard contracts
# ---------------------------------------------------------------------------

def _find_partitioned_scans(rel):
    found = [rel] if isinstance(rel, PartitionedScan) else []
    for child in rel.inputs:
        found.extend(_find_partitioned_scans(child))
    return found


@pytest.mark.parallel
def test_jdbc_shard_sql_carries_partition_predicate():
    plan = _plan(QUERIES["join_on_partition_key"], parallelism=4)
    scans = _find_partitioned_scans(plan)
    assert scans, "expected partitioned scans in the federated plan"
    jdbc_shards = [s for s in scans if "JdbcQuery" in s.explain()]
    assert jdbc_shards, "expected the jdbc side to partition"
    shard_sql = jdbc_shards[0].partition_rel(2).explain()
    assert "MOD" in shard_sql and "HASH" in shard_sql and "= 2" in shard_sql


@pytest.mark.parallel
def test_shards_are_disjoint_and_cover():
    """Each backend's shards must partition the table: disjoint, and
    their union is the full scan."""
    from repro.runtime.operators import ExecutionContext
    from repro.runtime.vectorized.executor import execute_batches

    plan = _plan(QUERIES["join_on_partition_key"], parallelism=4)
    for scan in _find_partitioned_scans(plan):
        shard_rows = []
        for pid in range(scan.n_partitions):
            rows = []
            for batch in execute_batches(scan.partition_rel(pid),
                                         ExecutionContext()):
                rows.extend(batch.to_rows())
            shard_rows.append(rows)
        whole = []
        for batch in execute_batches(scan.input, ExecutionContext()):
            whole.extend(batch.to_rows())
        combined = [r for rows in shard_rows for r in rows]
        assert sorted(combined, key=repr) == sorted(whole, key=repr)
        # keyed shards place each row by the canonical partition function
        if scan.keys:
            for pid, rows in enumerate(shard_rows):
                for row in rows:
                    values = [row[k] for k in scan.keys]
                    assert partition_of(values, scan.n_partitions) == pid


def test_capability_declarations():
    """The planner-facing contract: partitionable backends say so, and
    the catalog fingerprint reflects every declaration."""
    catalog = build_federated_catalog()
    jdbc = catalog.resolve_schema(["db"]).table("lineitems")
    mem = catalog.resolve_schema(["mem"]).table("parts")
    splunk = catalog.resolve_schema(["splunk"]).table("shipments")
    assert jdbc.capabilities().supports_partitioned_scan
    assert jdbc.capabilities().partition_scheme == "hash-mod"
    assert mem.capabilities().supports_partitioned_scan
    assert not splunk.capabilities().supports_partitioned_scan
    assert splunk.capabilities().supports_predicate_pushdown
    assert SCAN_ONLY.fingerprint() not in (
        jdbc.capabilities().fingerprint(), mem.capabilities().fingerprint())
    entries = dict(catalog.capability_fingerprint())
    assert any("LINEITEMS" in name.upper() for name in entries)
    assert any("PARTS" in name.upper() for name in entries)


# ---------------------------------------------------------------------------
# Golden snapshots: partition-pushdown plans on the two reference backends
# ---------------------------------------------------------------------------

GOLDEN_FEDERATED = [
    # A single-backend aggregate would push whole into jdbc (no scan
    # left to partition); the federated join keeps the jdbc side a
    # scan, so the snapshot documents the partition predicate wrapping
    # the shard's rendered SQL.
    ("partitioned_scan_jdbc", QUERIES["join_on_partition_key"]),
    ("partitioned_scan_memory",
     "SELECT category, COUNT(*) FROM mem.parts GROUP BY category"),
]


@pytest.mark.parametrize(
    "name,sql", [pytest.param(*case, id=case[0]) for case in GOLDEN_FEDERATED])
def test_partitioned_plan_matches_golden(name, sql):
    plan_text = _plan(sql, parallelism=4).explain() + "\n"
    golden_path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("GOLDEN_REGEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(plan_text)
        pytest.skip(f"regenerated {golden_path.name}")
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path.name}; "
        f"run with GOLDEN_REGEN=1 to create it")
    assert plan_text == golden_path.read_text(), (
        f"partitioned plan for {name!r} changed; if intentional, regenerate "
        f"with GOLDEN_REGEN=1")
