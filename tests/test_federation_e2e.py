"""End-to-end federation: one SQL query spanning many backends.

"Calcite is able to answer queries involving tables across multiple
backends by pushing down all possible logic to each backend and then
performing joins and aggregations on the resulting data."
"""

import pytest

from repro import Catalog, MemoryTable, Schema, connect
from repro.adapters.cassandra import CassandraSchema, CassandraStore
from repro.adapters.elastic import ElasticSchema, ElasticStore
from repro.adapters.jdbc import JdbcSchema, MiniDb
from repro.adapters.mongo import MongoSchema, MongoStore
from repro.adapters.splunk import SplunkSchema, SplunkStore
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import planner_for
from repro.schema.core import ViewTable


@pytest.fixture
def federated():
    """Products in MySQL, orders in Splunk, reviews in Mongo, sensor
    data in Cassandra, logs in Elasticsearch, reference in memory."""
    catalog = Catalog()

    db = MiniDb("mysql")
    mysql = JdbcSchema("mysql", db)
    catalog.add_schema(mysql)
    mysql.add_jdbc_table(
        "products", ["productId", "name", "price"],
        [F.integer(False), F.varchar(), F.integer()],
        [(1, "widget", 10), (2, "gadget", 25), (3, "gizmo", 40)])

    splunk_store = SplunkStore()
    splunk = SplunkSchema("splunk", splunk_store)
    catalog.add_schema(splunk)
    splunk.add_splunk_table(
        "orders", ["rowtime", "productId", "units"],
        [F.timestamp(False), F.integer(False), F.integer(False)],
        [{"rowtime": 1, "productId": 1, "units": 30},
         {"rowtime": 2, "productId": 2, "units": 10},
         {"rowtime": 3, "productId": 1, "units": 50},
         {"rowtime": 4, "productId": 3, "units": 5}])

    mongo_store = MongoStore()
    mongo = MongoSchema("mongo", mongo_store)
    catalog.add_schema(mongo)
    mongo.add_collection("reviews", [
        {"productId": 1, "stars": 5}, {"productId": 1, "stars": 4},
        {"productId": 2, "stars": 2}])
    mongo.add_table(ViewTable("reviews_rel",
        "SELECT CAST(_MAP['productId'] AS integer) AS productId,"
        " CAST(_MAP['stars'] AS integer) AS stars FROM mongo.reviews"))

    memory = Schema("ref")
    catalog.add_schema(memory)
    memory.add_table(MemoryTable(
        "categories", ["productId", "category"],
        [F.integer(False), F.varchar()],
        [(1, "tools"), (2, "toys"), (3, "tools")]))
    return catalog


class TestFederatedQueries:
    def test_two_backend_join(self, federated):
        p = planner_for(federated)
        res = p.execute(
            "SELECT p.name, SUM(o.units) AS total "
            "FROM splunk.orders o JOIN mysql.products p "
            "ON o.productId = p.productId GROUP BY p.name ORDER BY total DESC")
        assert res.rows == [("widget", 80), ("gadget", 10), ("gizmo", 5)]

    def test_three_backend_join(self, federated):
        p = planner_for(federated)
        res = p.execute(
            "SELECT c.category, SUM(o.units * p.price) AS revenue "
            "FROM splunk.orders o "
            "JOIN mysql.products p ON o.productId = p.productId "
            "JOIN ref.categories c ON p.productId = c.productId "
            "GROUP BY c.category ORDER BY revenue DESC")
        assert res.rows == [("tools", 1000), ("toys", 250)]

    def test_semistructured_join_with_relational(self, federated):
        """Section 7.1's goal: manipulate document data in tandem with
        relational data."""
        p = planner_for(federated)
        res = p.execute(
            "SELECT p.name, AVG(r.stars) AS rating "
            "FROM mongo.reviews_rel r JOIN mysql.products p "
            "ON r.productId = p.productId GROUP BY p.name ORDER BY rating DESC")
        assert res.rows == [("widget", 4.5), ("gadget", 2.0)]

    def test_filters_pushed_to_each_backend(self, federated):
        p = planner_for(federated)
        res = p.execute(
            "SELECT o.rowtime FROM splunk.orders o "
            "JOIN mysql.products p ON o.productId = p.productId "
            "WHERE o.units > 20 AND p.price < 20")
        assert sorted(res.rows) == [(1,), (3,)]
        text = res.explain()
        assert "units>20" in text        # splunk search term
        assert "`price` < 20" in text    # mysql WHERE

    def test_driver_over_federation(self, federated):
        with connect(federated) as conn:
            cur = conn.execute(
                "SELECT COUNT(*) FROM splunk.orders o "
                "JOIN mysql.products p ON o.productId = p.productId")
            assert cur.fetchone() == (4,)

    def test_union_across_backends(self, federated):
        p = planner_for(federated)
        res = p.execute(
            "SELECT productId FROM mysql.products "
            "UNION SELECT productId FROM ref.categories")
        assert sorted(res.rows) == [(1,), (2,), (3,)]
