"""Tests for the framework facade: configuration options and staging."""

import pytest

from repro.framework import FrameworkConfig, Planner, planner_for
from repro.core.traits import Convention, RelTraitSet


class TestConfigOptions:
    def test_join_reorder_toggle(self, hr_catalog):
        with_reorder = Planner(FrameworkConfig(hr_catalog, join_reorder=True))
        without = Planner(FrameworkConfig(hr_catalog, join_reorder=False))
        names_with = {r.description for r in with_reorder.all_rules()}
        names_without = {r.description for r in without.all_rules()}
        assert "JoinCommuteRule" in names_with
        assert "JoinCommuteRule" not in names_without

    def test_heuristic_mode_flows_to_volcano(self, hr_catalog):
        p = Planner(FrameworkConfig(hr_catalog, exhaustive=False,
                                    delta=0.1, patience=7))
        p.execute("SELECT name FROM hr.emps")
        assert p.last_volcano is not None
        assert p.last_volcano.exhaustive is False
        assert p.last_volcano.delta == 0.1
        assert p.last_volcano.patience == 7

    def test_metadata_caching_toggle(self, hr_catalog):
        p = Planner(FrameworkConfig(hr_catalog, metadata_caching=False))
        p.execute("SELECT name FROM hr.emps")
        assert p.last_volcano.mq.caching is False

    def test_extra_rules_injected(self, hr_catalog):
        from repro.core.rules import JoinExtractFilterRule
        extra = JoinExtractFilterRule()
        p = Planner(FrameworkConfig(hr_catalog, rules=[extra]))
        assert extra in p.all_rules()

    def test_custom_metadata_provider_used(self, hr_catalog):
        from repro.core.metadata import MetadataProvider

        calls = []

        class Spy(MetadataProvider):
            def row_count(self, rel, mq):
                calls.append(rel.rel_name)
                return None

        p = Planner(FrameworkConfig(hr_catalog, metadata_providers=[Spy()]))
        p.execute("SELECT name FROM hr.emps WHERE sal > 1")
        assert calls  # the spy was consulted during planning


class TestStaging:
    def test_hep_prepass_reduces_expressions(self, hr_catalog):
        """Stage A folds constants before Volcano ever sees the tree."""
        p = planner_for(hr_catalog)
        rel = p.rel("SELECT name FROM hr.emps WHERE 1 = 1 AND sal > 2000 + 3000")
        pre = p.rewrite_with_hep(rel)
        assert "1 = 1" not in pre.explain()
        assert "5000" in pre.explain()

    def test_optimize_to_custom_traits(self, hr_catalog):
        """Systems may request plans in their own convention."""
        from repro.adapters.spark import SPARK, spark_rules
        p = Planner(FrameworkConfig(hr_catalog, rules=spark_rules()))
        rel = p.rel("SELECT name FROM hr.emps WHERE sal > 9000")
        best = p.optimize(rel, RelTraitSet(SPARK))
        assert best.convention is SPARK
        from repro.runtime.operators import execute_to_list
        assert sorted(execute_to_list(best)) == [("Bill",), ("Theodore",)]

    def test_result_object(self, hr_catalog):
        p = planner_for(hr_catalog)
        result = p.execute("SELECT name FROM hr.emps WHERE sal > 9000")
        assert len(result) == 2
        assert list(result) == result.rows
        assert result.columns == ["name"]
        assert "Enumerable" in result.explain()

    def test_execute_accepts_rel(self, hr_catalog):
        p = planner_for(hr_catalog)
        rel = p.rel("SELECT COUNT(*) FROM hr.emps")
        assert p.execute(rel).rows == [(5,)]


class TestDeltaExecution:
    def test_delta_passes_through_outside_stream_executor(self, hr_catalog):
        """Delta over a finite relation degrades to the relation itself
        when executed directly (snapshot semantics)."""
        from repro.core.rel import LogicalDelta
        from repro.runtime.operators import execute_to_list
        p = planner_for(hr_catalog)
        rel = LogicalDelta(p.rel("SELECT name FROM hr.emps WHERE sal > 9000"))
        assert sorted(execute_to_list(rel)) == [("Bill",), ("Theodore",)]
