"""Tests for the geospatial extension (Section 7.3)."""

import math

import pytest

import repro.geo  # registers ST_* functions
from repro import Catalog, MemoryTable, Schema
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import planner_for
from repro.geo import (
    GeometryError,
    LineString,
    Point,
    Polygon,
    contains,
    distance,
    intersects,
    parse_wkt,
)


class TestWkt:
    def test_point_roundtrip(self):
        p = parse_wkt("POINT (4.9 52.37)")
        assert isinstance(p, Point)
        assert (p.x, p.y) == (4.9, 52.37)
        assert parse_wkt(p.wkt()) == p

    def test_linestring_roundtrip(self):
        l = parse_wkt("LINESTRING (0 0, 3 4)")
        assert isinstance(l, LineString)
        assert l.length() == 5.0

    def test_polygon_roundtrip(self):
        wkt = "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"
        poly = parse_wkt(wkt)
        assert isinstance(poly, Polygon)
        assert poly.area() == 16.0
        assert parse_wkt(poly.wkt()) == poly

    def test_polygon_with_hole(self):
        poly = parse_wkt(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))")
        assert poly.area() == 96.0
        assert not poly.contains_point(5, 5)   # inside the hole
        assert poly.contains_point(2, 2)

    def test_bad_wkt(self):
        with pytest.raises(GeometryError):
            parse_wkt("CIRCLE (1 1, 5)")
        with pytest.raises(GeometryError):
            parse_wkt("POLYGON ((0 0, 1 1))")  # unclosed/short ring

    def test_case_insensitive(self):
        assert isinstance(parse_wkt("point (1 2)"), Point)


class TestPredicates:
    SQUARE = parse_wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")

    def test_contains_point(self):
        assert contains(self.SQUARE, Point(5, 5))
        assert not contains(self.SQUARE, Point(15, 5))
        assert contains(self.SQUARE, Point(0, 0))  # boundary counts

    def test_contains_polygon(self):
        inner = parse_wkt("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))")
        assert contains(self.SQUARE, inner)
        assert not contains(inner, self.SQUARE)

    def test_intersects(self):
        overlapping = parse_wkt("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))")
        disjoint = parse_wkt("POLYGON ((20 20, 30 20, 30 30, 20 30, 20 20))")
        assert intersects(self.SQUARE, overlapping)
        assert not intersects(self.SQUARE, disjoint)

    def test_distance(self):
        assert distance(Point(0, 0), Point(3, 4)) == 5.0


class TestSqlIntegration:
    @pytest.fixture
    def gis(self):
        catalog = Catalog()
        s = Schema("gis")
        catalog.add_schema(s)
        s.add_table(MemoryTable(
            "country", ["name", "boundary"], [F.varchar(), F.varchar()],
            [("Netherlands",
              "POLYGON ((3.3 50.7, 7.2 50.7, 7.2 53.6, 3.3 53.6, 3.3 50.7))"),
             ("Belgium",
              "POLYGON ((2.5 49.5, 6.4 49.5, 6.4 51.5, 2.5 51.5, 2.5 49.5))")]))
        s.add_table(MemoryTable(
            "city", ["name", "x", "y"], [F.varchar(), F.double(), F.double()],
            [("Amsterdam", 4.9, 52.37), ("Brussels", 4.35, 50.85),
             ("Paris", 2.35, 48.85)]))
        return catalog

    def test_paper_query(self, gis):
        """Section 7.3's ST_Contains query runs verbatim."""
        p = planner_for(gis)
        res = p.execute("""SELECT name FROM (
          SELECT name,
            ST_GeomFromText('POLYGON ((4.82 52.43, 4.97 52.43, 4.97 52.33,
              4.82 52.33, 4.82 52.43))') AS "Amsterdam",
            ST_GeomFromText(boundary) AS "Country"
          FROM gis.country
        ) WHERE ST_Contains("Country", "Amsterdam")""")
        assert res.rows == [("Netherlands",)]

    def test_point_in_country_join(self, gis):
        p = planner_for(gis)
        res = p.execute(
            "SELECT ci.name, co.name FROM gis.city ci JOIN gis.country co "
            "ON ST_Contains(ST_GeomFromText(co.boundary), ST_POINT(ci.x, ci.y)) "
            "ORDER BY ci.name")
        assert ("Amsterdam", "Netherlands") in res.rows
        assert ("Brussels", "Belgium") in res.rows
        assert not any(city == "Paris" for city, _ in res.rows)

    def test_distance_function(self, gis):
        p = planner_for(gis)
        res = p.execute(
            "SELECT ST_Distance(ST_POINT(0, 0), ST_POINT(3, 4))")
        assert res.rows == [(5.0,)]

    def test_st_x_y_astext(self, gis):
        p = planner_for(gis)
        res = p.execute("SELECT ST_X(ST_POINT(1.5, 2.5)), ST_Y(ST_POINT(1.5, 2.5)),"
                        " ST_AsText(ST_POINT(1, 2))")
        assert res.rows == [(1.5, 2.5, "POINT (1 2)")]

    def test_st_dwithin(self, gis):
        p = planner_for(gis)
        res = p.execute(
            "SELECT name FROM gis.city "
            "WHERE ST_DWithin(ST_POINT(x, y), ST_POINT(4.9, 52.37), 1.0)")
        assert res.rows == [("Amsterdam",)]

    def test_geometry_type_in_validator(self, gis):
        p = planner_for(gis)
        rel = p.rel("SELECT ST_GeomFromText(boundary) AS g FROM gis.country")
        assert rel.row_type.fields[0].type.type_name.value == "GEOMETRY"
