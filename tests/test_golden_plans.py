"""Golden-plan regression tests.

Snapshots of the optimized physical plan for representative queries
under the standard rule set.  Any change to rules, cost model or planner
internals that alters a chosen plan shows up as a reviewable diff of
``tests/golden_plans/*.txt`` instead of a silent behaviour change.

Regenerate after an intentional planner change with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_plans.py
"""

import os
import pathlib

import pytest

from repro import Catalog, MemoryTable, Schema
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import FrameworkConfig, Planner

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden_plans"


def build_catalog() -> Catalog:
    """A deterministic two-schema catalog (no random data: plan choice
    depends only on statistics, which are fixed here)."""
    catalog = Catalog()
    hr = Schema("hr")
    catalog.add_schema(hr)
    hr.add_table(MemoryTable(
        "emps", ["empid", "deptno", "name", "sal", "commission"],
        [F.integer(False), F.integer(False), F.varchar(), F.integer(),
         F.integer()],
        [(100 + i, 10 * (1 + i % 3), f"e{i}", 5000 + 100 * i,
          None if i % 4 == 0 else 10 * i)
         for i in range(20)]))
    hr.add_table(MemoryTable(
        "depts", ["deptno", "dname"],
        [F.integer(False), F.varchar()],
        [(10, "Sales"), (20, "Marketing"), (30, "HR"), (40, "Empty")]))
    s = Schema("s")
    catalog.add_schema(s)
    s.add_table(MemoryTable(
        "products", ["productId", "name", "category"],
        [F.integer(False), F.varchar(), F.varchar()],
        [(pid, f"prod{pid}", "ABC"[pid % 3]) for pid in range(30)]))
    s.add_table(MemoryTable(
        "sales", ["saleId", "productId", "discount", "units"],
        [F.integer(False), F.integer(False), F.integer(), F.integer(False)],
        [(i, i % 30, None if i % 3 else 5, 1 + i % 7) for i in range(600)]))
    return catalog


#: (snapshot name, engine, SQL)
GOLDEN_QUERIES = [
    ("filter_project", "row",
     "SELECT name, sal + 100 FROM hr.emps WHERE deptno = 10"),
    ("filter_into_join", "row",
     "SELECT e.name, d.dname FROM hr.emps e JOIN hr.depts d "
     "ON e.deptno = d.deptno WHERE e.sal > 6000"),
    ("join_aggregate_order", "row",
     "SELECT p.name, SUM(sa.units) AS total FROM s.sales sa "
     "JOIN s.products p ON sa.productId = p.productId "
     "GROUP BY p.name ORDER BY total DESC"),
    ("three_way_join", "row",
     "SELECT e.name, d.dname, p.name FROM hr.emps e "
     "JOIN hr.depts d ON e.deptno = d.deptno "
     "JOIN s.products p ON e.empid = p.productId"),
    ("distinct_aggregate", "row",
     "SELECT deptno, COUNT(DISTINCT name) FROM hr.emps GROUP BY deptno"),
    ("sort_limit", "row",
     "SELECT empid, sal FROM hr.emps ORDER BY sal DESC LIMIT 5"),
    ("union_distinct", "row",
     "SELECT deptno FROM hr.emps UNION SELECT deptno FROM hr.depts"),
    ("having_filter", "row",
     "SELECT deptno, COUNT(*) AS c FROM hr.emps "
     "GROUP BY deptno HAVING COUNT(*) > 3"),
    ("case_projection", "row",
     "SELECT empid, CASE WHEN commission IS NULL THEN 0 ELSE commission END "
     "FROM hr.emps WHERE sal > 5500"),
    ("in_values_filter", "row",
     "SELECT name FROM s.products WHERE category IN ('A', 'B')"),
    # The same plans under the vectorized engine: the snapshot documents
    # the convention change and the absence of row/batch bridges on
    # single-backend memory plans.
    ("filter_into_join_vectorized", "vectorized",
     "SELECT e.name, d.dname FROM hr.emps e JOIN hr.depts d "
     "ON e.deptno = d.deptno WHERE e.sal > 6000"),
    ("join_aggregate_order_vectorized", "vectorized",
     "SELECT p.name, SUM(sa.units) AS total FROM s.sales sa "
     "JOIN s.products p ON sa.productId = p.productId "
     "GROUP BY p.name ORDER BY total DESC"),
    # Parallel (4-worker) variants: the snapshots document where the
    # exchange-insertion rules place exchanges — and, just as
    # importantly, where they do not (no distribution requirement, no
    # exchange).
    ("filter_into_join_parallel", "vectorized-p4",
     "SELECT e.name, d.dname FROM hr.emps e JOIN hr.depts d "
     "ON e.deptno = d.deptno WHERE e.sal > 6000"),
    ("join_aggregate_order_parallel", "vectorized-p4",
     "SELECT p.name, SUM(sa.units) AS total FROM s.sales sa "
     "JOIN s.products p ON sa.productId = p.productId "
     "GROUP BY p.name ORDER BY total DESC"),
    ("global_avg_parallel", "vectorized-p4",
     "SELECT AVG(sal), COUNT(*) FROM hr.emps"),
    ("filter_project_parallel", "vectorized-p4",
     "SELECT name, sal + 100 FROM hr.emps WHERE deptno = 10"),
    # Window over a partitionable scan: PARTITION BY is served
    # co-partitioned by the backend — shard-local evaluation, no
    # exchange except the root gather (and zero rows shuffled, see
    # test_copartitioned_window_shuffles_nothing).
    ("window_copartitioned_parallel", "vectorized-p4",
     "SELECT empid, deptno, "
     "SUM(sal) OVER (PARTITION BY deptno ORDER BY empid) FROM hr.emps"),
    ("window_vectorized", "vectorized",
     "SELECT empid, deptno, "
     "RANK() OVER (PARTITION BY deptno ORDER BY sal DESC) FROM hr.emps"),
    # Distinct UNION with a computed input column: no elision possible
    # on that input, so it hash-exchanges on the full row and dedups
    # per worker instead of gathering below the union.
    ("union_distinct_exchange_parallel", "vectorized-p4",
     "SELECT deptno * 2 FROM hr.emps UNION SELECT deptno FROM hr.depts"),
]


_PLANNERS = {}


def _planner(engine: str) -> Planner:
    if engine not in _PLANNERS:
        name, _, suffix = engine.partition("-p")
        parallelism = int(suffix) if suffix else 1
        _PLANNERS[engine] = Planner(FrameworkConfig(
            build_catalog(), engine=name, parallelism=parallelism))
    return _PLANNERS[engine]


@pytest.mark.parametrize(
    "name,engine,sql",
    [pytest.param(*case, id=case[0]) for case in GOLDEN_QUERIES])
def test_optimized_plan_matches_golden(name, engine, sql):
    planner = _planner(engine)
    plan_text = planner.optimize(planner.rel(sql)).explain() + "\n"
    golden_path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("GOLDEN_REGEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(plan_text)
        pytest.skip(f"regenerated {golden_path.name}")
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path.name}; "
        f"run with GOLDEN_REGEN=1 to create it")
    assert plan_text == golden_path.read_text(), (
        f"optimized plan for {name!r} changed; if intentional, regenerate "
        f"with GOLDEN_REGEN=1")


def test_copartitioned_window_shuffles_nothing():
    """The co-partitioned window golden plan must not just *look*
    shuffle-free — executing it must move zero rows across exchange
    edges (the shards are served directly by the backend)."""
    planner = _planner("vectorized-p4")
    sql = ("SELECT empid, deptno, "
           "SUM(sal) OVER (PARTITION BY deptno ORDER BY empid) FROM hr.emps")
    text = planner.optimize(planner.rel(sql)).explain()
    assert "VectorizedWindow" in text
    assert "HashExchange" not in text
    result = planner.execute(sql)
    assert result.context.rows_shuffled == 0
