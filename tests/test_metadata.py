"""Unit tests for metadata providers, the cache, and the cost model."""

import pytest

from repro.core import rex as rexmod
from repro.core.builder import RelBuilder
from repro.core.cost import RelOptCost
from repro.core.metadata import MetadataProvider, RelMetadataQuery
from repro.core.rel import JoinRelType, LogicalFilter
from repro.core.rex import RexCall, RexInputRef, literal
from repro.core.types import DEFAULT_TYPE_FACTORY as F


def scan(hr_catalog, name="emps"):
    b = RelBuilder(hr_catalog)
    return b.scan("hr", name).build()


class TestRowCounts:
    def test_scan_uses_table_statistic(self, hr_catalog):
        mq = RelMetadataQuery()
        assert mq.row_count(scan(hr_catalog)) == 5.0

    def test_filter_applies_selectivity(self, hr_catalog):
        mq = RelMetadataQuery()
        emps = scan(hr_catalog)
        eq = LogicalFilter(emps, RexCall(rexmod.EQUALS, [
            RexInputRef(1, F.integer()), literal(10)]))
        assert mq.row_count(eq) == pytest.approx(5 * 0.15)
        cmp_ = LogicalFilter(emps, RexCall(rexmod.GREATER_THAN, [
            RexInputRef(3, F.integer()), literal(0)]))
        assert mq.row_count(cmp_) == pytest.approx(5 * 0.5)

    def test_and_multiplies_selectivities(self, hr_catalog):
        mq = RelMetadataQuery()
        emps = scan(hr_catalog)
        cond = RexCall(rexmod.AND, [
            RexCall(rexmod.EQUALS, [RexInputRef(1, F.integer()), literal(10)]),
            RexCall(rexmod.GREATER_THAN, [RexInputRef(3, F.integer()), literal(0)]),
        ])
        assert mq.row_count(LogicalFilter(emps, cond)) == pytest.approx(5 * 0.15 * 0.5)

    def test_join_uses_distinct_counts(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = (b.scan("hr", "emps").scan("hr", "depts")
                .join_using(JoinRelType.INNER, "deptno").build())
        mq = RelMetadataQuery()
        n = mq.row_count(rel)
        assert 1.0 <= n <= 20.0  # bounded, not the cartesian 20

    def test_sort_fetch_caps(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = b.scan("hr", "emps").limit(None, 2).build()
        assert RelMetadataQuery().row_count(rel) == 2.0

    def test_union_sums(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").project_fields("deptno")
        b.scan("hr", "depts").project_fields("deptno")
        rel = b.union(all_=True).build()
        assert RelMetadataQuery().row_count(rel) == 9.0

    def test_aggregate_groups(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        rel = b.aggregate(b.group_key("deptno")).build()
        mq = RelMetadataQuery()
        assert 1.0 <= mq.row_count(rel) <= 5.0

    def test_global_aggregate_is_one_row(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        rel = b.aggregate(b.group_key(), b.count_star("c")).build()
        assert RelMetadataQuery().row_count(rel) == 1.0


class TestUniquenessAndSizes:
    def test_unique_declared_keys(self, hr_catalog):
        from repro.schema.core import Statistic
        hr = hr_catalog.resolve_schema(["hr"])
        emps = hr.table("emps")
        emps.statistic = Statistic(row_count=5, unique_keys=[[0]])
        hr_catalog._opt_tables.clear()
        rel = scan(hr_catalog)
        mq = RelMetadataQuery()
        assert mq.columns_unique(rel, (0,))
        assert mq.columns_unique(rel, (0, 1))  # superset of a key
        assert not mq.columns_unique(rel, (1,))

    def test_aggregate_group_keys_unique(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        rel = b.aggregate(b.group_key("deptno"), b.count_star("c")).build()
        assert RelMetadataQuery().columns_unique(rel, (0,))

    def test_average_row_size(self, hr_catalog):
        mq = RelMetadataQuery()
        size = mq.average_row_size(scan(hr_catalog))
        assert size > 0
        assert mq.data_size(scan(hr_catalog)) == pytest.approx(size * 5)


class TestCosts:
    def test_cumulative_grows_with_depth(self, hr_catalog):
        mq = RelMetadataQuery()
        emps = scan(hr_catalog)
        filtered = LogicalFilter(emps, RexCall(rexmod.GREATER_THAN, [
            RexInputRef(3, F.integer()), literal(0)]))
        assert mq.cumulative_cost(filtered).value > mq.cumulative_cost(emps).value

    def test_cost_arithmetic(self):
        a = RelOptCost(1, 2, 3)
        b = RelOptCost(10, 20, 30)
        assert (a + b).rows == 11
        assert a.multiply_by(2).cpu == 4
        assert a.is_lt(b)
        assert RelOptCost.ZERO.is_le(a)
        assert RelOptCost.INFINITY.is_infinite()
        assert "rows" in str(a)
        assert str(RelOptCost.INFINITY) == "{inf}"


class TestCache:
    def test_cache_hits_accumulate(self, hr_catalog):
        mq = RelMetadataQuery(caching=True)
        rel = scan(hr_catalog)
        mq.row_count(rel)
        before = mq.stats_hits
        mq.row_count(rel)
        assert mq.stats_hits == before + 1

    def test_no_caching_never_hits(self, hr_catalog):
        mq = RelMetadataQuery(caching=False)
        rel = scan(hr_catalog)
        mq.row_count(rel)
        mq.row_count(rel)
        assert mq.stats_hits == 0

    def test_cache_saves_requests_on_deep_plans(self, hr_catalog):
        """The paper's claim: caching helps when metadata kinds share
        sub-computations (cardinality feeding cost, selectivity...)."""
        b = RelBuilder(hr_catalog)
        rel = (b.scan("hr", "emps").scan("hr", "depts")
                .join_using(JoinRelType.INNER, "deptno").build())
        cached = RelMetadataQuery(caching=True)
        cached.cumulative_cost(rel)
        cached.row_count(rel)
        uncached = RelMetadataQuery(caching=False)
        uncached.cumulative_cost(rel)
        uncached.row_count(rel)
        assert uncached.stats_requests > cached.stats_requests

    def test_clear_cache(self, hr_catalog):
        mq = RelMetadataQuery()
        rel = scan(hr_catalog)
        mq.row_count(rel)
        mq.clear_cache()
        hits = mq.stats_hits
        mq.row_count(rel)
        assert mq.stats_hits == hits  # re-computed, not hit


class TestPluggableProviders:
    def test_custom_provider_overrides_default(self, hr_catalog):
        class Exact(MetadataProvider):
            def row_count(self, rel, mq):
                from repro.core.rel import TableScan
                if isinstance(rel, TableScan):
                    return 123.0
                return None

        mq = RelMetadataQuery([Exact()])
        assert mq.row_count(scan(hr_catalog)) == 123.0

    def test_provider_defers_with_none(self, hr_catalog):
        class Silent(MetadataProvider):
            pass

        mq = RelMetadataQuery([Silent()])
        assert mq.row_count(scan(hr_catalog)) == 5.0

    def test_custom_selectivity(self, hr_catalog):
        class Half(MetadataProvider):
            def selectivity(self, rel, predicate, mq):
                return 0.5 if predicate is not None else None

        emps = scan(hr_catalog)
        f = LogicalFilter(emps, RexCall(rexmod.EQUALS, [
            RexInputRef(1, F.integer()), literal(10)]))
        mq = RelMetadataQuery([Half()])
        assert mq.row_count(f) == 2.5

    def test_parallelism(self, hr_catalog):
        mq = RelMetadataQuery()
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        agg = b.aggregate(b.group_key(), b.count_star("c")).build()
        assert mq.max_parallelism(agg) == 1
