"""Tests for materialized-view substitution and lattices (Section 6)."""

import pytest

from repro import Catalog, MemoryTable, Schema
from repro.core.rel import LogicalTableScan, TableScan
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import planner_for
from repro.mv import Lattice, Materialization, Measure, try_substitute
from repro.runtime.operators import execute_to_list


@pytest.fixture
def sales():
    catalog = Catalog()
    s = Schema("sales")
    catalog.add_schema(s)
    rows = [(i, i % 5, i % 3, i * 2) for i in range(100)]
    s.add_table(MemoryTable("orders", ["oid", "product", "region", "units"],
                            [F.integer(False)] * 4, rows))
    return catalog, s


class TestSubstitution:
    def test_exact_match_replaced_by_scan(self, sales):
        catalog, schema = sales
        p = planner_for(catalog)
        view = p.rel("SELECT product, SUM(units) AS su FROM sales.orders "
                     "GROUP BY product")
        schema.materializations.append(
            Materialization.create("mv1", view, ("sales", "mv1")))
        res = p.execute("SELECT product, SUM(units) AS su FROM sales.orders "
                        "GROUP BY product")
        assert "mv1" in res.explain()
        assert "orders" not in res.explain()
        assert sorted(res.rows)[0] == (0, 1900)

    def test_residual_filter_partial_rewrite(self, sales):
        """The paper: "partial rewritings that include additional
        operators ... filters with residual predicate conditions"."""
        catalog, schema = sales
        p = planner_for(catalog)
        view = p.rel("SELECT * FROM sales.orders WHERE units > 50")
        schema.materializations.append(
            Materialization.create("mv_filtered", view, ("sales", "mv_filtered")))
        res = p.execute("SELECT oid FROM sales.orders "
                        "WHERE units > 50 AND region = 1")
        assert "mv_filtered" in res.explain()
        expected = [(i,) for i in range(100) if i * 2 > 50 and i % 3 == 1]
        assert sorted(res.rows) == expected

    def test_rollup_from_finer_aggregate(self, sales):
        catalog, schema = sales
        p = planner_for(catalog)
        view = p.rel("SELECT product, region, SUM(units) AS su, COUNT(*) AS c "
                     "FROM sales.orders GROUP BY product, region")
        schema.materializations.append(
            Materialization.create("mv_fine", view, ("sales", "mv_fine")))
        res = p.execute("SELECT product, SUM(units), COUNT(*) "
                        "FROM sales.orders GROUP BY product")
        assert "mv_fine" in res.explain()
        assert sorted(res.rows)[0] == (0, 1900, 20)

    def test_count_rolls_up_as_sum(self, sales):
        catalog, schema = sales
        p = planner_for(catalog)
        view = p.rel("SELECT region, COUNT(*) AS c FROM sales.orders GROUP BY region")
        schema.materializations.append(
            Materialization.create("mv_counts", view, ("sales", "mv_counts")))
        res = p.execute("SELECT COUNT(*) FROM sales.orders")
        assert "mv_counts" in res.explain()
        assert res.rows == [(100,)]

    def test_no_match_leaves_plan_alone(self, sales):
        catalog, schema = sales
        p = planner_for(catalog)
        view = p.rel("SELECT product, MAX(units) AS mu FROM sales.orders "
                     "GROUP BY product")
        schema.materializations.append(
            Materialization.create("mv_max", view, ("sales", "mv_max")))
        # AVG cannot roll up from MAX
        res = p.execute("SELECT product, AVG(units) FROM sales.orders "
                        "GROUP BY product")
        assert "mv_max" not in res.explain()

    def test_try_substitute_returns_none_when_unmatched(self, sales):
        catalog, schema = sales
        p = planner_for(catalog)
        view = p.rel("SELECT oid FROM sales.orders WHERE units > 9999")
        mat = Materialization.create("m", view)
        other = p.rel("SELECT region FROM sales.orders")
        assert try_substitute(other, [mat]) is None

    def test_materialization_can_be_disabled(self, sales):
        catalog, schema = sales
        from repro.framework import FrameworkConfig, Planner
        p = Planner(FrameworkConfig(catalog, use_materializations=False))
        view = p.rel("SELECT product, SUM(units) AS su FROM sales.orders "
                     "GROUP BY product")
        schema.materializations.append(
            Materialization.create("mv_off", view, ("sales", "mv_off")))
        res = p.execute("SELECT product, SUM(units) AS su FROM sales.orders "
                        "GROUP BY product")
        assert "mv_off" not in res.explain()


class TestLattice:
    @pytest.fixture
    def lattice_setup(self, sales):
        catalog, schema = sales
        scan = LogicalTableScan(catalog.resolve_table(["sales", "orders"]))
        lattice = Lattice("star", scan, dimension_columns=[1, 2],
                          measures=[Measure("SUM", 3), Measure("COUNT", 3, "cnt")])
        schema.lattices.append(lattice)
        return catalog, schema, lattice

    def test_tile_materialization(self, lattice_setup):
        catalog, schema, lattice = lattice_setup
        tile = lattice.materialize_tile([1, 2])
        assert tile.row_count == 15  # 5 products × 3 regions
        assert tile.covers([1])
        assert tile.covers([1, 2])
        assert not tile.covers([0])

    def test_query_answered_from_tile(self, lattice_setup):
        catalog, schema, lattice = lattice_setup
        lattice.materialize_tile([1, 2])
        p = planner_for(catalog)
        res = p.execute("SELECT region, SUM(units) FROM sales.orders GROUP BY region")
        assert "tile" in res.explain()
        assert lattice.rewrites == 1
        assert sorted(res.rows) == [(0, 3366), (1, 3234), (2, 3300)]

    def test_smallest_covering_tile_chosen(self, lattice_setup):
        catalog, schema, lattice = lattice_setup
        big = lattice.materialize_tile([1, 2])
        small = lattice.materialize_tile([2])
        p = planner_for(catalog)
        res = p.execute("SELECT region, SUM(units) FROM sales.orders GROUP BY region")
        assert small.table.name in res.explain()

    def test_count_rollup_from_tile(self, lattice_setup):
        catalog, schema, lattice = lattice_setup
        lattice.materialize_tile([1])
        p = planner_for(catalog)
        res = p.execute("SELECT product, COUNT(*) FROM sales.orders GROUP BY product")
        assert "tile" in res.explain()
        assert all(c == 20 for _p, c in res.rows)

    def test_unmatched_measure_skips_lattice(self, lattice_setup):
        catalog, schema, lattice = lattice_setup
        lattice.materialize_tile([1, 2])
        p = planner_for(catalog)
        res = p.execute("SELECT region, MIN(units) FROM sales.orders GROUP BY region")
        assert "tile" not in res.explain()

    def test_non_dimension_group_skips_lattice(self, lattice_setup):
        catalog, schema, lattice = lattice_setup
        lattice.materialize_tile([1, 2])
        p = planner_for(catalog)
        res = p.execute("SELECT oid, SUM(units) FROM sales.orders GROUP BY oid")
        assert "tile" not in res.explain()

    def test_measure_validation(self):
        with pytest.raises(ValueError):
            Measure("MEDIAN", 0)
