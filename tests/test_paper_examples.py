"""Every concrete query/example printed in the paper, end to end.

One test per artifact, in paper order.  These are the reproduction's
ground truth: if a paper snippet stops running, something regressed.
"""

import pytest

from repro import Catalog, MemoryTable, RelBuilder, Schema
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import planner_for

HOUR = 3_600_000


class TestSection3Builder:
    """The Pig script and its expression-builder equivalent."""

    def test_builder_program(self):
        catalog = Catalog()
        s = Schema("s")
        catalog.add_schema(s)
        s.add_table(MemoryTable(
            "employee_data", ["deptno", "sal"],
            [F.integer(False), F.integer(False)],
            [(10, 100), (10, 200), (20, 300)]))
        builder = RelBuilder(catalog)
        node = (builder
                .scan("employee_data")
                .aggregate(builder.group_key("deptno"),
                           builder.count(False, "c"),
                           builder.sum(False, "s", builder.field("sal")))
                .build())
        from repro.runtime.operators import execute_to_list
        assert sorted(execute_to_list(node)) == [(10, 2, 300), (20, 1, 300)]


class TestSection6Queries:
    def test_filter_into_join_query(self, sales_catalog):
        """SELECT products.name, COUNT(*) ... WHERE discount IS NOT NULL."""
        p = planner_for(sales_catalog)
        result = p.execute("""
            SELECT products.name, COUNT(*)
            FROM s.sales JOIN s.products USING (productId)
            WHERE sales.discount IS NOT NULL
            GROUP BY products.name
            ORDER BY COUNT(*) DESC""")
        counts = [c for _n, c in result.rows]
        assert counts == sorted(counts, reverse=True)
        assert all(c >= 1 for c in counts)


class TestSection71SemiStructured:
    def test_mongo_zips_view(self):
        from repro.adapters.mongo import MongoSchema, MongoStore
        catalog = Catalog()
        mongo = MongoSchema("mongo_raw", MongoStore())
        catalog.add_schema(mongo)
        mongo.add_collection("zips", [
            {"city": "AMSTERDAM", "loc": [4.9, 52.37], "pop": 921000}])
        p = planner_for(catalog)
        result = p.execute("""
            SELECT CAST(_MAP['city'] AS varchar(20)) AS city,
                   CAST(_MAP['loc'][1] AS float) AS longitude,
                   CAST(_MAP['loc'][2] AS float) AS latitude
            FROM mongo_raw.zips""")
        assert result.rows == [("AMSTERDAM", 4.9, 52.37)]
        assert result.columns == ["city", "longitude", "latitude"]


@pytest.fixture
def orders_stream():
    from repro.stream import StreamTable
    catalog = Catalog()
    s = Schema("s")
    catalog.add_schema(s)
    orders = StreamTable("Orders", ["rowtime", "productId", "units", "orderId"],
                         [F.timestamp(False), F.integer(False),
                          F.integer(False), F.integer(False)])
    s.add_table(orders)
    shipments = StreamTable("Shipments", ["rowtime", "orderId"],
                            [F.timestamp(False), F.integer(False)])
    s.add_table(shipments)
    return catalog, orders, shipments


class TestSection72Streaming:
    def test_stream_filter(self, orders_stream):
        """SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25."""
        from repro.stream import StreamExecutor
        catalog, orders, _ = orders_stream
        ex = StreamExecutor(planner_for(catalog),
                            "SELECT STREAM rowtime, productId, units "
                            "FROM s.Orders WHERE units > 25")
        orders.push((1000, 1, 30, 1))
        orders.push((2000, 2, 10, 2))
        assert ex.advance(10_000) == [(1000, 1, 30)]

    def test_sliding_window_sum(self, orders_stream):
        """SUM(units) OVER (ORDER BY rowtime PARTITION BY productId
        RANGE INTERVAL '1' HOUR PRECEDING)."""
        from repro.stream import StreamExecutor
        catalog, orders, _ = orders_stream
        ex = StreamExecutor(planner_for(catalog), """
            SELECT STREAM rowtime, productId, units,
                SUM(units) OVER (ORDER BY rowtime PARTITION BY productId
                    RANGE INTERVAL '1' HOUR PRECEDING) unitsLastHour
            FROM s.Orders""")
        orders.push((0, 1, 10, 1))
        orders.push((HOUR // 2, 1, 5, 2))
        orders.push((2 * HOUR, 1, 2, 3))
        rows = {r[0]: r[3] for r in ex.advance(3 * HOUR)}
        assert rows == {0: 10, HOUR // 2: 15, 2 * HOUR: 2}

    def test_tumble_group_by(self, orders_stream):
        """TUMBLE_END(...) AS rowtime ... GROUP BY TUMBLE(...), productId."""
        from repro.stream import StreamExecutor
        catalog, orders, _ = orders_stream
        ex = StreamExecutor(planner_for(catalog), """
            SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS rowtime,
                   productId, COUNT(*) AS c, SUM(units) AS units
            FROM s.Orders
            GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId""")
        orders.push((1_000, 7, 3, 1))
        orders.push((2_000, 7, 4, 2))
        assert ex.advance(HOUR) == [(HOUR, 7, 2, 7)]

    def test_stream_to_stream_join(self, orders_stream):
        """Orders ⋈ Shipments ON orderId AND s.rowtime BETWEEN ..."""
        from repro.stream import StreamExecutor
        catalog, orders, shipments = orders_stream
        ex = StreamExecutor(planner_for(catalog), """
            SELECT STREAM o.rowtime, o.productId, o.orderId,
                   s.rowtime AS shipTime
            FROM s.Orders AS o JOIN s.Shipments AS s
              ON o.orderId = s.orderId
             AND s.rowtime BETWEEN o.rowtime AND o.rowtime + INTERVAL '1' HOUR""")
        orders.push((1_000, 1, 20, 42))
        shipments.push((30 * 60_000, 42))
        assert ex.advance(10 * HOUR) == [(1_000, 1, 42, 30 * 60_000)]

    def test_non_monotonic_stream_group_rejected(self, orders_stream):
        """The planner "validates that the expression is monotonic"."""
        from repro.sql.to_rel import ValidationError
        from repro.stream import StreamExecutor
        catalog, _, _ = orders_stream
        with pytest.raises(ValidationError, match="monotonic"):
            StreamExecutor(planner_for(catalog),
                           "SELECT STREAM productId, COUNT(*) FROM s.Orders "
                           "GROUP BY productId")


class TestSection73Geospatial:
    def test_amsterdam_query(self):
        import repro.geo  # noqa: F401
        catalog = Catalog()
        s = Schema("s")
        catalog.add_schema(s)
        s.add_table(MemoryTable(
            "country", ["name", "boundary"], [F.varchar(), F.varchar()],
            [("Netherlands",
              "POLYGON ((3.3 50.7, 7.2 50.7, 7.2 53.6, 3.3 53.6, 3.3 50.7))"),
             ("Spain",
              "POLYGON ((-9.3 36.0, 3.3 36.0, 3.3 43.8, -9.3 43.8, -9.3 36.0))")]))
        result = planner_for(catalog).execute("""
            SELECT name FROM (
              SELECT name,
                ST_GeomFromText('POLYGON ((4.82 52.43, 4.97 52.43, 4.97 52.33,
                    4.82 52.33, 4.82 52.43))') AS "Amsterdam",
                ST_GeomFromText(boundary) AS "Country"
              FROM s.country
            ) WHERE ST_Contains("Country", "Amsterdam")""")
        assert result.rows == [("Netherlands",)]


class TestSection4Figure2:
    def test_cross_engine_plan(self):
        """The full Figure 2 walk-through (also in benchmarks)."""
        from repro.adapters.jdbc import JdbcSchema, MiniDb
        from repro.adapters.splunk import SplunkSchema, SplunkStore
        db = MiniDb("mysql")
        store = SplunkStore()
        catalog = Catalog()
        catalog.add_schema(JdbcSchema("mysql", db))
        splunk = SplunkSchema("splunk", store)
        catalog.add_schema(splunk)
        catalog.resolve_schema(["mysql"]).add_jdbc_table(
            "products", ["productId", "name"],
            [F.integer(False), F.varchar()], [(1, "widget")])
        splunk.add_splunk_table(
            "orders", ["rowtime", "productId", "units"],
            [F.timestamp(False), F.integer(False), F.integer(False)],
            [{"rowtime": 1, "productId": 1, "units": 30}])
        store.register_lookup("products", ["productId", "name"],
                              lambda: db.table("products").rows)
        result = planner_for(catalog).execute(
            "SELECT o.rowtime, p.name FROM splunk.orders o "
            "JOIN mysql.products p ON o.productId = p.productId "
            "WHERE o.units > 20")
        assert result.rows == [(1, "widget")]
        assert "lookup products" in result.explain()
