"""Parallel partitioned vectorized execution: exchanges + scheduler.

Covers the three layers of the parallel subsystem:

* the exchange-insertion rules (`repro.runtime.vectorized.parallel_rules`):
  exchanges appear only where a distribution is required, aggregates
  split into partial/final phases (AVG via SUM+COUNT), small build
  sides broadcast, `parallelism=1` degenerates to the serial plan;
* the worker-pool scheduler (`repro.runtime.vectorized.parallel`):
  results identical to the serial engines across join types, NULL
  keys, collations and limits; errors propagate instead of hanging;
* the `_sort` fast paths of the serial executor: streaming early-exit
  for pure LIMIT/OFFSET and the bounded top-N heap under ORDER BY.
"""

import random

import pytest

from repro import Catalog, MemoryTable, Schema
from repro.core.rex_eval import RexExecutionError
from repro.core.traits import RelCollation, RelDistribution, RelFieldCollation
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import FrameworkConfig, Planner
from repro.runtime.operators import row_sort_key, sort_rows
from repro.runtime.vectorized.exchange import (
    BroadcastExchange,
    HashExchange,
    RandomExchange,
    SingletonExchange,
    exchanges_in,
)


def build_catalog(n_sales: int = 3000, n_products: int = 40,
                  seed: int = 11) -> Catalog:
    """Sales/products with NULL join keys and NULL measure values."""
    rng = random.Random(seed)
    catalog = Catalog()
    s = Schema("s")
    catalog.add_schema(s)
    products = [(pid, f"prod{pid}", "ABC"[pid % 3]) for pid in range(n_products)]
    # A product id no sale references (exercises LEFT/FULL unmatched
    # build rows) plus a NULL-keyed product.
    products.append((9999, "orphan", "Z"))
    sales = []
    for i in range(n_sales):
        pid = None if i % 97 == 0 else rng.randrange(n_products + 5)
        discount = None if i % 3 else 5
        sales.append((i, pid, discount, 1 + i % 7))
    s.add_table(MemoryTable(
        "products", ["productId", "name", "category"],
        [F.integer(), F.varchar(), F.varchar()], products))
    s.add_table(MemoryTable(
        "sales", ["saleId", "productId", "discount", "units"],
        [F.integer(False), F.integer(), F.integer(), F.integer(False)],
        sales))
    return catalog


_CATALOG = build_catalog()


def _planner(**kwargs) -> Planner:
    return Planner(FrameworkConfig(_CATALOG, **kwargs))


def _rows(planner, sql):
    return planner.execute(sql).rows


def _multiset(rows):
    return sorted(rows, key=repr)


ROW = _planner()
VEC = _planner(engine="vectorized")


# ---------------------------------------------------------------------------
# Exchange insertion (plan shape)
# ---------------------------------------------------------------------------

class TestExchangeInsertion:
    def _plan(self, sql, **kwargs):
        planner = _planner(engine="vectorized", **kwargs)
        return planner.optimize(planner.rel(sql))

    def test_no_exchange_without_requirement(self):
        """A scan/filter/project pipeline has no distribution
        requirement, so the parallel plan equals the serial plan."""
        sql = "SELECT saleId, units + 1 FROM s.sales WHERE units > 3"
        parallel = self._plan(sql, parallelism=4)
        serial = self._plan(sql)
        assert not exchanges_in(parallel)
        assert parallel.explain() == serial.explain()

    def test_parallelism_one_is_the_serial_path(self):
        sql = ("SELECT productId, SUM(units) FROM s.sales "
               "GROUP BY productId")
        assert (self._plan(sql, parallelism=1).explain()
                == self._plan(sql).explain())

    # The shuffle-machinery tests below pin partitioned_scans=False:
    # with elision on, a partitionable memory scan is served directly by
    # the backend and these exchange shapes (the gather-then-shard path
    # still used for non-partitionable backends) never appear.

    def test_two_phase_aggregate(self):
        plan = self._plan(
            "SELECT productId, COUNT(*) AS c, AVG(units) AS a "
            "FROM s.sales GROUP BY productId", parallelism=4,
            partitioned_scans=False)
        text = plan.explain()
        exchanges = exchanges_in(plan)
        # partial → HashExchange on the group key → final (+ AVG merge)
        assert any(isinstance(e, HashExchange) for e in exchanges)
        assert any(isinstance(e, RandomExchange) for e in exchanges)
        assert text.count("VectorizedAggregate") == 2
        assert "AVG_MERGE" in text
        # the final COUNT is a SUM0 over partial counts
        assert "$SUM0" in text

    def test_global_aggregate_gathers_partials(self):
        plan = self._plan("SELECT SUM(units), COUNT(*) FROM s.sales",
                          parallelism=4)
        exchanges = exchanges_in(plan)
        assert any(isinstance(e, SingletonExchange) for e in exchanges)
        assert plan.explain().count("VectorizedAggregate") == 2

    def test_distinct_aggregate_is_not_decomposed(self):
        """COUNT(DISTINCT) cannot merge from partials: the input is
        gathered and a single aggregate runs serially."""
        plan = self._plan(
            "SELECT productId, COUNT(DISTINCT units) FROM s.sales "
            "GROUP BY productId", parallelism=4)
        assert plan.explain().count("VectorizedAggregate") == 1
        assert not any(isinstance(e, HashExchange) for e in exchanges_in(plan))

    def test_aggregate_on_join_key_runs_single_phase(self):
        """Grouping by the key the join already hash-partitioned on
        needs no further exchange and no partial/final split."""
        plan = self._plan(
            "SELECT sa.productId, COUNT(*) FROM s.sales sa "
            "JOIN s.products p ON sa.productId = p.productId "
            "GROUP BY sa.productId",
            parallelism=4, broadcast_join_threshold=0,
            partitioned_scans=False)
        text = plan.explain()
        assert text.count("VectorizedAggregate") == 1
        # exactly the two join-input exchanges plus the root gather
        hashes = [e for e in exchanges_in(plan) if isinstance(e, HashExchange)]
        assert len(hashes) == 2

    def test_join_hash_partitions_both_inputs(self):
        plan = self._plan(
            "SELECT s1.saleId FROM s.sales s1 "
            "JOIN s.sales s2 ON s1.saleId = s2.saleId",
            parallelism=4, broadcast_join_threshold=0,
            partitioned_scans=False)
        hashes = [e for e in exchanges_in(plan) if isinstance(e, HashExchange)]
        assert len(hashes) == 2

    def test_small_build_side_broadcasts(self):
        plan = self._plan(
            "SELECT sa.saleId, p.name FROM s.sales sa "
            "JOIN s.products p ON sa.productId = p.productId",
            parallelism=4, broadcast_join_threshold=1000)
        exchanges = exchanges_in(plan)
        assert any(isinstance(e, BroadcastExchange) for e in exchanges)
        assert not any(isinstance(e, HashExchange) for e in exchanges)

    def test_full_join_never_broadcasts(self):
        """FULL joins track unmatched build rows per worker, which is
        only correct when the build side is partitioned, not copied."""
        plan = self._plan(
            "SELECT sa.saleId, p.name FROM s.sales sa "
            "FULL JOIN s.products p ON sa.productId = p.productId",
            parallelism=4, broadcast_join_threshold=1_000_000,
            partitioned_scans=False)
        exchanges = exchanges_in(plan)
        assert not any(isinstance(e, BroadcastExchange) for e in exchanges)
        assert any(isinstance(e, HashExchange) for e in exchanges)

    def test_ordered_gather_carries_collation(self):
        plan = self._plan(
            "SELECT productId, SUM(units) AS total FROM s.sales "
            "GROUP BY productId ORDER BY total DESC", parallelism=4)
        gathers = [e for e in exchanges_in(plan)
                   if isinstance(e, SingletonExchange)]
        assert any(g.collation.field_collations for g in gathers)

    def test_hash_exchange_trait_is_canonical(self):
        """The runtime key order is preserved; the carried trait is
        canonicalised for trait comparison."""
        scan = VEC.optimize(VEC.rel("SELECT saleId, units FROM s.sales"))
        exch = HashExchange(scan, [1, 0], parallelism=2)
        assert exch.keys == (1, 0)
        assert exch.distribution == RelDistribution.hash([0, 1])
        assert exch.traits.distribution.keys == (0, 1)


# ---------------------------------------------------------------------------
# Runtime correctness (parallel vs row engine)
# ---------------------------------------------------------------------------

JOIN_SQL = ("SELECT sa.saleId, sa.units, p.name FROM s.sales sa "
            "{join} JOIN s.products p ON sa.productId = p.productId")


@pytest.mark.parallel
class TestParallelRuntime:
    @pytest.mark.parametrize("join", ["INNER", "LEFT", "RIGHT", "FULL"])
    @pytest.mark.parametrize("parallelism", [2, 4])
    def test_join_types_with_null_keys(self, join, parallelism):
        sql = JOIN_SQL.format(join=join)
        expected = _multiset(_rows(ROW, sql))
        for threshold in (0, 1000):  # force hash-hash and broadcast paths
            par = _planner(engine="vectorized", parallelism=parallelism,
                           broadcast_join_threshold=threshold)
            assert _multiset(_rows(par, sql)) == expected

    @pytest.mark.parametrize("join", ["RIGHT", "FULL"])
    def test_outer_join_then_group_on_probe_key(self, join):
        """Unmatched build rows are emitted NULL-padded on whichever
        worker held them, so the join output is NOT hash-distributed on
        the probe keys: a following aggregate on those keys must
        re-exchange or it would emit one NULL group per worker."""
        sql = (f"SELECT sa.productId, COUNT(*) AS c FROM s.sales sa "
               f"{join} JOIN s.products p ON sa.productId = p.productId "
               "GROUP BY sa.productId")
        expected = _multiset(_rows(ROW, sql))
        for parallelism in (2, 4):
            par = _planner(engine="vectorized", parallelism=parallelism,
                           broadcast_join_threshold=0)
            assert _multiset(_rows(par, sql)) == expected

    @pytest.mark.parametrize("parallelism", [2, 4])
    def test_aggregates_merge_exactly(self, parallelism):
        sql = ("SELECT productId, COUNT(*) AS c, COUNT(discount) AS cd, "
               "SUM(discount) AS sd, AVG(discount) AS ad, "
               "MIN(units) AS mn, MAX(units) AS mx "
               "FROM s.sales GROUP BY productId")
        par = _planner(engine="vectorized", parallelism=parallelism)
        assert _multiset(_rows(par, sql)) == _multiset(_rows(ROW, sql))

    def test_avg_of_all_null_group_is_null(self):
        catalog = Catalog()
        s = Schema("s")
        catalog.add_schema(s)
        s.add_table(MemoryTable(
            "t", ["k", "v"], [F.integer(False), F.integer()],
            [(1, None), (1, None), (2, 4), (2, None), (2, 8)] * 50))
        par = Planner(FrameworkConfig(catalog, engine="vectorized",
                                      parallelism=4))
        rows = _rows(par, "SELECT k, AVG(v) FROM s.t GROUP BY k")
        assert sorted(rows) == [(1, None), (2, 6.0)]

    @pytest.mark.parametrize("parallelism", [2, 4])
    def test_order_by_is_exact_across_workers(self, parallelism):
        """The merge gather preserves the collation end to end."""
        sql = ("SELECT saleId, units FROM s.sales "
               "ORDER BY units DESC, saleId LIMIT 40")
        par = _planner(engine="vectorized", parallelism=parallelism)
        assert _rows(par, sql) == _rows(ROW, sql)

    @pytest.mark.parametrize("parallelism", [2, 4])
    def test_limit_offset_is_global(self, parallelism):
        sql = ("SELECT saleId FROM s.sales WHERE units > 2 "
               "ORDER BY saleId LIMIT 10 OFFSET 25")
        par = _planner(engine="vectorized", parallelism=parallelism)
        assert _rows(par, sql) == _rows(ROW, sql)

    def test_union_all_stays_partitioned(self):
        sql = ("SELECT productId FROM s.sales WHERE units > 5 "
               "UNION ALL SELECT productId FROM s.sales WHERE units <= 5")
        par = _planner(engine="vectorized", parallelism=4)
        assert _multiset(_rows(par, sql)) == _multiset(_rows(ROW, sql))

    def test_worker_errors_propagate(self):
        """A failing expression inside a worker raises at the gather
        instead of deadlocking the region."""
        par = _planner(engine="vectorized", parallelism=4)
        with pytest.raises(RexExecutionError, match="division by zero"):
            _rows(par, "SELECT SUM(units / (units - units)) FROM s.sales")

    def test_abandoned_gather_cancels_workers(self):
        """Stopping mid-stream (LIMIT-style consumption) shuts the
        region down rather than leaving producers blocked."""
        from repro.runtime.operators import ExecutionContext, execute
        par = _planner(engine="vectorized", parallelism=4)
        plan = par.optimize(par.rel(
            "SELECT productId, SUM(units) FROM s.sales GROUP BY productId"))
        it = execute(plan, ExecutionContext())
        assert next(it) is not None
        it.close()  # abandon: must not hang and must not leak the region


# ---------------------------------------------------------------------------
# Serial _sort fast paths (streaming limit + top-N heap)
# ---------------------------------------------------------------------------

class TestSortFastPaths:
    def test_pure_limit_early_exits(self):
        """LIMIT with no collation stops pulling the scan after the
        first batch instead of materialising the whole table."""
        result = VEC.execute("SELECT saleId FROM s.sales LIMIT 3")
        assert len(result.rows) == 3
        assert result.context.rows_scanned < 3000  # table has 3000 rows

    def test_limit_offset_streams(self):
        sql = "SELECT saleId FROM s.sales LIMIT 10 OFFSET 2000"
        assert _rows(VEC, sql) == _rows(ROW, sql)

    def test_offset_only(self):
        sql = "SELECT saleId FROM s.sales OFFSET 2995"
        assert _multiset(_rows(VEC, sql)) == _multiset(_rows(ROW, sql))

    def test_top_n_heap_matches_full_sort_with_ties(self):
        """The bounded heap must be stable like the full sort: ties on
        the sort key keep input order in both engines."""
        sql = "SELECT units, saleId FROM s.sales ORDER BY units LIMIT 25"
        assert _rows(VEC, sql) == _rows(ROW, sql)

    def test_top_n_heap_desc_nulls(self):
        sql = ("SELECT discount, saleId FROM s.sales "
               "ORDER BY discount DESC, saleId LIMIT 30")
        assert _rows(VEC, sql) == _rows(ROW, sql)


def test_row_sort_key_equals_sort_rows():
    """Property: one composite key sort == the per-field stable passes."""
    rng = random.Random(3)
    rows = [(rng.choice([None, rng.randrange(5)]),
             rng.choice([None, rng.randrange(9)]),
             rng.randrange(100)) for _ in range(400)]
    for descending in (False, True):
        for nulls_first in (False, True):
            collation = RelCollation([
                RelFieldCollation(0, descending=descending,
                                  nulls_first=nulls_first),
                RelFieldCollation(1, descending=not descending,
                                  nulls_first=nulls_first),
            ])
            assert (sorted(rows, key=row_sort_key(collation))
                    == sort_rows(rows, collation))


# ---------------------------------------------------------------------------
# Config surface
# ---------------------------------------------------------------------------

def test_parallelism_is_validated():
    with pytest.raises(ValueError, match="parallelism must be >= 1"):
        Planner(FrameworkConfig(_CATALOG, engine="vectorized", parallelism=0))
    with pytest.raises(ValueError, match="requires engine='vectorized'"):
        Planner(FrameworkConfig(_CATALOG, engine="row", parallelism=2))
