"""Plan-cache semantics: normalization, LRU behaviour, invalidation,
isolation, and a cache-on/off differential over the cross-engine suite.

The cache must be *invisible* except for speed: a cached plan bound to
new parameters returns exactly what cold planning would, a catalog
mutation must never serve a stale plan, and two catalogs (tenants) must
never see each other's plans even when they share one LRU.
"""

import pytest

from repro import Catalog, MemoryTable, Schema
from repro.avatica.cache import PlanCache, normalize_sql
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import FrameworkConfig, Planner

from tests.test_engine_differential import CASES


# -- SQL normalization --------------------------------------------------------


def test_normalize_erases_whitespace_and_keyword_case():
    variants = [
        "SELECT name FROM hr.emps WHERE sal > 7000",
        "select name from hr.emps where sal > 7000",
        "SELECT   name\n  FROM hr.emps\n  WHERE sal > 7000",
        "SELECT name FROM hr.emps -- the big earners\nWHERE sal > 7000",
    ]
    canon = normalize_sql(variants[0])
    for v in variants[1:]:
        assert normalize_sql(v) == canon


def test_normalize_preserves_semantics_bearing_text():
    # String literal contents are case- and space-significant.
    assert normalize_sql("SELECT 'a b'") != normalize_sql("SELECT 'A B'")
    assert normalize_sql("SELECT 'a  b'") != normalize_sql("SELECT 'a b'")
    # Identifier case is visible in result column names.
    assert normalize_sql("SELECT name FROM t") != \
        normalize_sql("SELECT NAME FROM t")


def test_normalize_falls_back_on_unlexable_input():
    assert normalize_sql("  SELECT 'unterminated  ") == "SELECT 'unterminated"


# -- LRU mechanics ------------------------------------------------------------


def test_lru_evicts_least_recently_used():
    cache = PlanCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1       # refresh a
    cache.put("c", 3)                # evicts b, not a
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.stats.evictions == 1


def test_stats_track_hits_and_misses():
    cache = PlanCache(4)
    assert cache.get("missing") is None
    cache.put("k", "plan")
    assert cache.get("k") == "plan"
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.hit_rate == 0.5


# -- planner integration ------------------------------------------------------


def _planner(catalog, **kw):
    return Planner(FrameworkConfig(catalog, **kw))


def test_repeat_statement_hits_cache(hr_catalog):
    planner = _planner(hr_catalog)
    sql = "SELECT name FROM hr.emps WHERE sal > 9000"
    cold = planner.execute(sql)
    assert not cold.cache_hit
    warm = planner.execute("select   name from hr.emps WHERE sal > 9000")
    assert warm.cache_hit
    assert sorted(cold.rows) == sorted(warm.rows)
    assert warm.plan_cache_stats["hits"] == 1


def test_different_statements_do_not_collide(hr_catalog):
    planner = _planner(hr_catalog)
    a = planner.execute("SELECT name FROM hr.emps WHERE sal > 9000")
    b = planner.execute("SELECT name FROM hr.emps WHERE sal > 7500")
    assert not a.cache_hit and not b.cache_hit
    assert sorted(b.rows) == [("Bill",), ("Eric",), ("Theodore",)]


def test_catalog_mutation_invalidates(hr_catalog):
    planner = _planner(hr_catalog)
    sql = "SELECT COUNT(*) FROM hr.emps"
    planner.execute(sql)
    assert planner.execute(sql).cache_hit
    hr = hr_catalog.resolve_schema(["hr"])
    hr.add_table(MemoryTable(
        "bonus", ["empid", "amount"], [F.integer(False), F.integer()],
        [(100, 50)]))
    post = planner.execute(sql)
    assert not post.cache_hit          # version moved: stale plan dropped
    assert post.rows == [(5,)]
    assert post.plan_cache_stats["invalidations"] >= 1
    assert planner.execute(sql).cache_hit   # re-cached under new version


def test_explicit_invalidate(hr_catalog):
    planner = _planner(hr_catalog)
    sql = "SELECT COUNT(*) FROM hr.depts"
    planner.execute(sql)
    hr_catalog.invalidate()
    assert not planner.execute(sql).cache_hit


def test_no_cross_catalog_leakage():
    """Same SQL, same-shaped schemas, one shared LRU: each catalog must
    plan (and answer) against its own tables."""
    def build(rows):
        catalog = Catalog()
        s = Schema("s")
        catalog.add_schema(s)
        s.add_table(MemoryTable(
            "t", ["id"], [F.integer(False)], rows))
        return catalog

    shared = PlanCache(16)
    p1 = Planner(FrameworkConfig(build([(1,), (2,)])), plan_cache=shared)
    p2 = Planner(FrameworkConfig(build([(7,)])), plan_cache=shared)
    sql = "SELECT id FROM s.t"
    r1 = p1.execute(sql)
    r2 = p2.execute(sql)
    assert not r1.cache_hit and not r2.cache_hit   # no false sharing
    assert sorted(r1.rows) == [(1,), (2,)]
    assert r2.rows == [(7,)]
    assert len(shared) == 2
    # And repeats still hit within each catalog.
    assert p1.execute(sql).cache_hit and p2.execute(sql).cache_hit


def test_planning_fingerprint_separates_configs(hr_catalog):
    """One shared cache, two engines: a row plan must never be served
    to the vectorized planner (the fingerprint is part of the key)."""
    shared = PlanCache(16)
    row = Planner(FrameworkConfig(hr_catalog, engine="row"),
                  plan_cache=shared)
    vec = Planner(FrameworkConfig(hr_catalog, engine="vectorized"),
                  plan_cache=shared)
    sql = "SELECT name FROM hr.emps WHERE deptno = 10"
    assert not row.execute(sql).cache_hit
    assert not vec.execute(sql).cache_hit
    assert len(shared) == 2
    assert sorted(row.execute(sql).rows) == sorted(vec.execute(sql).rows)


def test_fingerprint_separates_parallelism_and_partitioning(hr_catalog):
    """Parallelism and the partition-pushdown flag change the physical
    plan, so each (parallelism, partitioned_scans) combination must get
    its own cache entry even through one shared LRU."""
    shared = PlanCache(16)
    configs = [
        dict(parallelism=1),
        dict(parallelism=4),
        dict(parallelism=4, partitioned_scans=False),
    ]
    sql = "SELECT deptno, COUNT(*) FROM hr.emps GROUP BY deptno"
    rows = None
    for kwargs in configs:
        planner = Planner(
            FrameworkConfig(hr_catalog, engine="vectorized", **kwargs),
            plan_cache=shared)
        assert not planner.execute(sql).cache_hit
        assert planner.execute(sql).cache_hit
        got = sorted(planner.execute(sql).rows)
        rows = got if rows is None else rows
        assert got == rows
    assert len(shared) == len(configs)


def test_fingerprint_tracks_adapter_capabilities():
    """Two catalogs identical except for a table's declared scan
    capabilities must not share plans: the capability drives whether
    the planner elides exchanges, so it is part of the planning key."""
    def catalog_with(table_cls):
        catalog = Catalog()
        s = Schema("s")
        catalog.add_schema(s)
        s.add_table(table_cls(
            "t", ["g", "v"], [F.integer(False), F.integer(False)],
            [(i % 5, i) for i in range(50)]))
        return catalog

    class ScanOnlyTable(MemoryTable):
        def capabilities(self):
            from repro.adapters.capability import SCAN_ONLY
            return SCAN_ONLY

    partitionable = catalog_with(MemoryTable)
    scan_only = catalog_with(ScanOnlyTable)
    assert (partitionable.capability_fingerprint()
            != scan_only.capability_fingerprint())
    shared = PlanCache(16)
    sql = "SELECT g, SUM(v) FROM s.t GROUP BY g"
    p1 = Planner(FrameworkConfig(partitionable, engine="vectorized",
                                 parallelism=4), plan_cache=shared)
    p2 = Planner(FrameworkConfig(scan_only, engine="vectorized",
                                 parallelism=4), plan_cache=shared)
    r1, r2 = p1.execute(sql), p2.execute(sql)
    assert not r1.cache_hit and not r2.cache_hit
    assert "PartitionedScan" in r1.plan.explain()
    assert "PartitionedScan" not in r2.plan.explain()
    assert sorted(r1.rows) == sorted(r2.rows)


def test_cache_disabled_never_reports_hits(hr_catalog):
    planner = _planner(hr_catalog, plan_cache=False)
    sql = "SELECT name FROM hr.emps"
    assert planner.plan_cache is None
    assert not planner.execute(sql).cache_hit
    assert not planner.execute(sql).cache_hit


# -- cache-on/off differential ------------------------------------------------

_CATALOGS = {}


def _case_planners(builder, engine):
    """(cached planner, uncached planner) over one shared catalog."""
    key = (builder, engine)
    if key not in _CATALOGS:
        catalog = builder()
        _CATALOGS[key] = (
            Planner(FrameworkConfig(catalog, engine=engine)),
            Planner(FrameworkConfig(catalog, engine=engine,
                                    plan_cache=False)))
    return _CATALOGS[key]


@pytest.mark.parametrize("engine", ["row", "vectorized"])
@pytest.mark.parametrize(
    "case_id,builder,sql,ordered",
    [pytest.param(*c, id=c[0]) for c in CASES])
def test_cached_plans_match_uncached(case_id, builder, sql, ordered, engine):
    """Executing through the cache — including the warm second run —
    must be indistinguishable from planning cold every time."""
    cached, uncached = _case_planners(builder, engine)
    baseline = uncached.execute(sql).rows
    cold = cached.execute(sql)
    warm = cached.execute(sql)
    assert warm.cache_hit
    if not ordered:
        baseline = sorted(baseline, key=repr)
        assert sorted(cold.rows, key=repr) == baseline
        assert sorted(warm.rows, key=repr) == baseline
    else:
        assert cold.rows == baseline
        assert warm.rows == baseline
