"""Unit tests for the two planner engines (Section 6)."""

import pytest

from repro.core import rex as rexmod
from repro.core.builder import RelBuilder
from repro.core.hep import HepMatchOrder, HepPlanner, HepProgram
from repro.core.rel import (
    Filter,
    Join,
    JoinRelType,
    LogicalFilter,
    LogicalProject,
    Project,
    TableScan,
    count_nodes,
)
from repro.core.rex import RexCall, RexInputRef, literal
from repro.core.rules import (
    FilterIntoJoinRule,
    FilterMergeRule,
    ProjectMergeRule,
    ProjectRemoveRule,
    standard_logical_rules,
)
from repro.core.traits import Convention, RelTraitSet
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.core.volcano import CannotPlanError, VolcanoPlanner
from repro.runtime import enumerable_rules, execute_to_list


def filter_over_join(catalog):
    """The Figure 4 shape: Filter above Join."""
    b = RelBuilder(catalog)
    b.scan("hr", "emps").scan("hr", "depts")
    b.join_using(JoinRelType.INNER, "deptno")
    cond = b.greater_than(b.field("sal"), b.literal(8000))
    return LogicalFilter(b.build(), cond)


class TestHepPlanner:
    def test_fires_until_fixpoint(self, hr_catalog):
        rel = filter_over_join(hr_catalog)
        hep = HepPlanner(rules=[FilterIntoJoinRule()])
        result = hep.find_best_exp(rel)
        # filter moved below the join
        assert isinstance(result, Join)
        assert isinstance(result.left, Filter)
        assert hep.matches_fired >= 1

    def test_no_rules_is_identity(self, hr_catalog):
        rel = filter_over_join(hr_catalog)
        assert HepPlanner(rules=[]).find_best_exp(rel) is rel

    def test_filter_merge(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        inner = LogicalFilter(b.build(), RexCall(rexmod.GREATER_THAN, [
            RexInputRef(3, F.integer()), literal(1)]))
        outer = LogicalFilter(inner, RexCall(rexmod.LESS_THAN, [
            RexInputRef(3, F.integer()), literal(99999)]))
        result = HepPlanner(rules=[FilterMergeRule()]).find_best_exp(outer)
        assert isinstance(result, Filter)
        assert isinstance(result.input, TableScan)

    def test_multi_stage_program(self, hr_catalog):
        program = HepProgram()
        program.add_rule(FilterIntoJoinRule(), HepMatchOrder.TOP_DOWN)
        program.add_rule_collection([ProjectMergeRule(), ProjectRemoveRule()],
                                    HepMatchOrder.BOTTOM_UP)
        rel = filter_over_join(hr_catalog)
        result = HepPlanner(program).find_best_exp(rel)
        assert isinstance(result, Join)

    def test_match_limit_stops_runaway(self, hr_catalog):
        # JoinCommuteRule alone would flip forever; the limit stops it.
        from repro.core.rules import JoinCommuteRule
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        rel = b.join_using(JoinRelType.INNER, "deptno").build()
        program = HepProgram().add_rule(JoinCommuteRule(), match_limit=5)
        hep = HepPlanner(program)
        hep.find_best_exp(rel)
        assert hep.matches_fired <= 5

    def test_semantics_preserved(self, hr_catalog):
        rel = filter_over_join(hr_catalog)
        before = sorted(execute_to_list(rel))
        after_rel = HepPlanner(rules=standard_logical_rules()).find_best_exp(rel)
        assert sorted(execute_to_list(after_rel)) == before


class TestVolcanoPlanner:
    def _plan(self, rel, **kwargs):
        planner = VolcanoPlanner(
            rules=standard_logical_rules() + enumerable_rules(), **kwargs)
        return planner, planner.optimize(rel)

    def test_produces_enumerable_plan(self, hr_catalog):
        rel = filter_over_join(hr_catalog)
        _, best = self._plan(rel)
        assert best.convention is Convention.ENUMERABLE

    def test_semantics_preserved(self, hr_catalog):
        rel = filter_over_join(hr_catalog)
        before = sorted(execute_to_list(rel))
        _, best = self._plan(rel)
        assert sorted(execute_to_list(best)) == before

    def test_digest_deduplication(self, hr_catalog):
        """Registering the same expression twice yields one set."""
        b = RelBuilder(hr_catalog)
        rel1 = b.scan("hr", "emps").build()
        b2 = RelBuilder(hr_catalog)
        rel2 = b2.scan("hr", "emps").build()
        planner = VolcanoPlanner(rules=[])
        s1 = planner.register(rel1)
        s2 = planner.register(rel2)
        assert s1.rel_set.canonical() is s2.rel_set.canonical()

    def test_equivalence_set_grows_on_transform(self, hr_catalog):
        rel = filter_over_join(hr_catalog)
        planner = VolcanoPlanner(rules=[FilterIntoJoinRule()])
        subset = planner.register(rel)
        # drain the queue manually
        planner.optimize = planner.optimize  # noqa: readability
        try:
            planner.find_best_exp(rel, RelTraitSet(Convention.NONE))
        except CannotPlanError:
            pass
        assert len(subset.rel_set.canonical().rels) >= 2

    def test_cannot_plan_without_converters(self, hr_catalog):
        rel = filter_over_join(hr_catalog)
        planner = VolcanoPlanner(rules=[])  # no enumerable rules
        with pytest.raises(CannotPlanError):
            planner.optimize(rel)

    def test_cost_improves_with_pushdown_rules(self, hr_catalog):
        rel = filter_over_join(hr_catalog)
        p_min = VolcanoPlanner(rules=enumerable_rules())
        p_min.optimize(rel)
        cost_without = p_min.best_cost()
        p_full = VolcanoPlanner(
            rules=standard_logical_rules() + enumerable_rules())
        p_full.optimize(rel)
        cost_with = p_full.best_cost()
        assert cost_with.value <= cost_without.value

    def test_heuristic_mode_stops_early(self, sales_catalog):
        b = RelBuilder(sales_catalog)
        b.scan("s", "sales").scan("s", "products")
        b.join_using(JoinRelType.INNER, "productId")
        cond = b.is_not_null(b.field("discount"))
        rel = LogicalFilter(b.build(), cond)
        from repro.core.rules import join_reorder_rules
        rules = standard_logical_rules() + join_reorder_rules() + enumerable_rules()
        exhaustive = VolcanoPlanner(rules=rules, exhaustive=True)
        exhaustive.optimize(rel)
        eager = VolcanoPlanner(rules=rules, exhaustive=False,
                               delta=0.0, patience=5)
        eager.optimize(rel)
        assert eager.matches_fired <= exhaustive.matches_fired

    def test_join_reordering_beats_fixed_order(self, hr_catalog):
        """Volcano with commute/associate explores cheaper join orders."""
        from repro.core.rules import join_reorder_rules
        b = RelBuilder(hr_catalog)
        # big x big, then x small — reordering can join small first
        b.scan("hr", "emps").scan("hr", "emps")
        b.join_using(JoinRelType.INNER, "deptno")
        b.scan("hr", "depts")
        b.join_using(JoinRelType.INNER, "deptno")
        rel = b.build()
        base = VolcanoPlanner(rules=standard_logical_rules() + enumerable_rules())
        base.optimize(rel)
        reorder = VolcanoPlanner(rules=standard_logical_rules()
                                 + join_reorder_rules() + enumerable_rules())
        best = reorder.optimize(rel)
        assert reorder.best_cost().value <= base.best_cost().value
        # results must be identical regardless of order
        assert sorted(execute_to_list(best)) == sorted(execute_to_list(rel))

    def test_change_traits_returns_subset(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = b.scan("hr", "emps").build()
        planner = VolcanoPlanner(rules=[])
        subset = planner.register(rel)
        enum_subset = planner.change_traits(
            subset, RelTraitSet(Convention.ENUMERABLE))
        assert enum_subset.rel_set.canonical() is subset.rel_set.canonical()
        assert enum_subset.traits.convention is Convention.ENUMERABLE
