"""The process worker backend: differential, engagement and chaos.

Three axes:

* **differential** — every cross-engine case from
  ``test_engine_differential`` must produce identical rows when the
  exchange edges run over forked worker processes instead of threads
  (same multiset; exactly ordered where a collation is required);
* **engagement** — guards against the process backend silently falling
  back to threads: partitionable plans must actually fork
  (``processes_spawned > 0``) and fold the children's counters back
  into the statement context over the wire;
* **chaos** — a SIGKILLed worker surfaces as a typed
  :class:`~repro.errors.WorkerCrashed` (not a hang, not a pickle
  error), deadlines propagate into children, and cancellation through
  the query server reclaims every process and admission slot.

The whole module is skipped where ``fork`` is unavailable (the
scheduler would resolve ``workers="process"`` to threads there, which
``test_parallel_agrees_with_serial_and_row`` already covers).
"""

import multiprocessing
import os
import signal
import sys
import threading
import time

import pytest

from repro import Catalog, MemoryTable, Schema
from repro.adapters.chaos import ChaosTable
from repro.avatica import OperationalError, QueryServer
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.errors import BackendError, DeadlineExceeded, WorkerCrashed
from repro.framework import FrameworkConfig, Planner
from repro.runtime.vectorized.parallel_process import process_backend_available
from repro.schema.core import Table

from test_engine_differential import (
    CASES,
    PARALLELISMS,
    _planners,
    build_sales_catalog,
)

pytestmark = pytest.mark.skipif(
    not process_backend_available(),
    reason="no fork start method (process backend unavailable)")

GROUP_SQL = "SELECT k, SUM(v) AS total FROM s.t GROUP BY k"

#: keep injected-fault retries fast, as in test_resilience.py
FAST_RETRY = dict(scan_retry_backoff=0.001, scan_retry_backoff_max=0.002)

_PROCESS_CACHE = {}


def _process_planner(builder, parallelism):
    """A process-backed parallel planner sharing the cached catalog."""
    key = (builder, parallelism)
    if key not in _PROCESS_CACHE:
        catalog = _planners(builder)[0].catalog
        _PROCESS_CACHE[key] = Planner(FrameworkConfig(
            catalog, engine="vectorized", parallelism=parallelism,
            workers="process"))
    return _PROCESS_CACHE[key]


def _make_catalog(n=2000, wrap=None, **chaos_kwargs):
    """One table ``s.t``; optionally chaos- or kamikaze-wrapped."""
    catalog = Catalog()
    s = Schema("s")
    catalog.add_schema(s)
    table = MemoryTable(
        "t", ["id", "k", "v"],
        [F.integer(False), F.integer(False), F.integer(False)],
        [(i, i % 7, (i * 13) % 101) for i in range(n)])
    if chaos_kwargs:
        table = ChaosTable(table, **chaos_kwargs)
    if wrap is not None:
        table = wrap(table)
    s.add_table(table)
    # a small healthy side table for post-fault follow-up statements
    s.add_table(MemoryTable(
        "tiny", ["id"], [F.integer(False)], [(i,) for i in range(5)]))
    return catalog


def _await_no_children(timeout=10.0):
    """Every forked worker must be reaped within ``timeout``."""
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        kids = multiprocessing.active_children()  # reaps as a side effect
        if not kids:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"worker processes leaked: {multiprocessing.active_children()}")


class KamikazeTable(Table):
    """A proxy whose scans SIGKILL any *forked* process that runs them.

    The parent records its pid at construction; scans in the parent
    stay healthy, scans in a worker child die without cleanup — the
    shape of an OOM-killed or segfaulted worker."""

    def __init__(self, inner: Table) -> None:
        super().__init__(inner.name, inner.row_type, inner.statistic)
        self.inner = inner
        self._parent = os.getpid()

    def capabilities(self):
        return self.inner.capabilities()

    def scan(self):
        return self._boom(self.inner.scan())

    def scan_partition(self, partition_id, n_partitions, keys=()):
        return self._boom(
            self.inner.scan_partition(partition_id, n_partitions, keys))

    def _boom(self, rows):
        if os.getpid() != self._parent:
            os.kill(os.getpid(), signal.SIGKILL)
        yield from rows

    def __getattr__(self, name):
        return getattr(self.inner, name)


# ---------------------------------------------------------------------------
# Differential: the process axis of the cross-engine harness
# ---------------------------------------------------------------------------

@pytest.mark.parallel
@pytest.mark.parametrize("parallelism", PARALLELISMS)
@pytest.mark.parametrize(
    "builder,sql,ordered",
    [pytest.param(b, sql, ordered, id=case_id)
     for case_id, b, sql, ordered in CASES])
def test_process_workers_agree_with_row_engine(builder, sql, ordered,
                                               parallelism):
    row_planner, vec_planner = _planners(builder)
    proc_planner = _process_planner(builder, parallelism)
    row_result = row_planner.execute(sql)
    vec_result = vec_planner.execute(sql)
    proc_result = proc_planner.execute(sql)
    assert row_result.columns == proc_result.columns
    if ordered:
        assert proc_result.rows == row_result.rows
        assert proc_result.rows == vec_result.rows
    else:
        expected = sorted(row_result.rows, key=repr)
        assert sorted(proc_result.rows, key=repr) == expected
        assert sorted(vec_result.rows, key=repr) == expected
    _await_no_children()


# ---------------------------------------------------------------------------
# Engagement: the backend must actually fork and fold stats home
# ---------------------------------------------------------------------------

@pytest.mark.parallel
class TestProcessEngagement:
    def test_partitionable_aggregate_forks_workers(self):
        planner = _process_planner(build_sales_catalog, 2)
        result = planner.execute(
            "SELECT productId, SUM(units) AS su FROM s.sales "
            "GROUP BY productId")
        ctx = result.context
        assert ctx.processes_spawned > 0
        # the children's scan counters crossed the wire back home
        assert ctx.rows_scanned >= 1000  # the sales table's cardinality
        assert ctx.worker_crashes == 0
        _await_no_children()

    def test_serial_plans_do_not_fork(self):
        """Plans without exchange edges stay in-process even under
        ``workers="process"`` (forking would be pure overhead)."""
        planner = _process_planner(build_sales_catalog, 2)
        result = planner.execute("SELECT name FROM s.products WHERE "
                                 "productId < 3")
        assert result.context.processes_spawned == 0

    def test_workers_and_batch_size_change_the_cache_key(self):
        catalog = _planners(build_sales_catalog)[0].catalog
        sql = "SELECT COUNT(*) FROM s.sales"
        base = Planner(FrameworkConfig(
            catalog, engine="vectorized", parallelism=2))
        proc = Planner(FrameworkConfig(
            catalog, engine="vectorized", parallelism=2, workers="process"))
        small = Planner(FrameworkConfig(
            catalog, engine="vectorized", parallelism=2, batch_size=64))
        assert base.cache_key(sql) != proc.cache_key(sql)
        assert base.cache_key(sql) != small.cache_key(sql)
        assert proc.cache_key(sql) != small.cache_key(sql)

    def test_auto_resolution(self):
        catalog = _planners(build_sales_catalog)[0].catalog
        serial = Planner(FrameworkConfig(
            catalog, engine="vectorized", workers="auto"))
        assert serial.resolved_workers() == "thread"  # nothing to gain
        par = Planner(FrameworkConfig(
            catalog, engine="vectorized", parallelism=2, workers="auto"))
        gil = getattr(sys, "_is_gil_enabled", lambda: True)()
        assert par.resolved_workers() == ("process" if gil else "thread")
        row = Planner(FrameworkConfig(catalog, workers="process"))
        assert row.resolved_workers() == "thread"  # row engine: no edges

    def test_server_stats_report_execution_profile(self):
        server = QueryServer(engine="vectorized", parallelism=2,
                             workers="process", batch_size=512)
        assert server.stats()["execution"] == {
            "workers": "process", "batch_size": 512, "parallelism": 2}


# ---------------------------------------------------------------------------
# Chaos: crashes, deadlines, cancellation
# ---------------------------------------------------------------------------

@pytest.mark.parallel
@pytest.mark.chaos
class TestProcessChaos:
    def _planner(self, catalog, **kwargs):
        opts = dict(FAST_RETRY, engine="vectorized", parallelism=2,
                    workers="process")
        opts.update(kwargs)
        return Planner(FrameworkConfig(catalog, **opts))

    def test_killed_worker_surfaces_typed_error(self):
        """SIGKILL mid-scan: the consumer sees EOF before EOS and must
        raise a typed, non-retryable WorkerCrashed — no hang, no
        partial result, and every surviving process reclaimed."""
        planner = self._planner(_make_catalog(wrap=KamikazeTable),
                                statement_timeout=30.0)
        started = time.monotonic()
        with pytest.raises(WorkerCrashed) as info:
            planner.execute(GROUP_SQL)
        assert time.monotonic() - started < 20.0
        assert isinstance(info.value, BackendError)
        assert info.value.retryable is False
        _await_no_children()

    def test_killed_worker_counts_in_server_stats(self):
        server = QueryServer(**FAST_RETRY, engine="vectorized",
                             parallelism=2, workers="process")
        server.register_catalog("default",
                                _make_catalog(wrap=KamikazeTable))
        conn = server.connect()
        with pytest.raises((OperationalError, WorkerCrashed)):
            conn.execute(GROUP_SQL).fetchall()
        assert server.stats()["resilience"]["worker_crashes"] >= 1
        assert server.stats()["statements"]["active"] == 0
        _await_no_children()

    def test_deadline_propagates_into_workers(self):
        """A slow scan inside a forked worker must still honour the
        statement deadline: children inherit the remaining budget and
        the statement fails within it, not at stream exhaustion."""
        planner = self._planner(
            _make_catalog(n=20_000, latency_per_row=0.005),
            statement_timeout=0.5)
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            planner.execute(GROUP_SQL)
        assert time.monotonic() - started < 10.0
        _await_no_children()

    def test_cancellation_reclaims_processes_and_slots(self):
        """Server-side cancel of a process-backed statement: the row
        stream dies typed, every forked worker is reclaimed within the
        join budget, and the admission slot frees (a follow-up
        statement on the same 1-slot server is admitted)."""
        server = QueryServer(max_concurrent_statements=1,
                             admission_timeout=5.0, **FAST_RETRY,
                             engine="vectorized", parallelism=2,
                             workers="process")
        server.register_catalog(
            "default", _make_catalog(n=50_000, latency_per_row=0.002))
        conn = server.connect()
        cur = conn.execute(GROUP_SQL)
        failure = {}
        done = threading.Event()

        def drain():
            try:
                cur.fetchall()
            except OperationalError as exc:
                failure["error"] = exc
            finally:
                done.set()

        threading.Thread(target=drain, daemon=True).start()
        # wait for the scheduler to actually fork before killing it
        end = time.monotonic() + 10.0
        while (not multiprocessing.active_children()
               and not done.is_set() and time.monotonic() < end):
            time.sleep(0.02)
        assert multiprocessing.active_children(), "workers never forked"
        cur.cancel()
        assert done.wait(15.0), "cancelled statement failed to unwind"
        assert "error" in failure
        _await_no_children()
        assert server.stats()["resilience"]["cancelled"] == 1
        # zero admission-slot leaks: the single slot is free again
        assert conn.execute("SELECT COUNT(*) FROM s.tiny").fetchone() == (5,)
        assert server.stats()["statements"]["active"] == 0
