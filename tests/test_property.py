"""Property-based tests (hypothesis) on core invariants.

The central invariant of the whole framework: every rule application
and every planner pass preserves query semantics.  These tests generate
random data and predicates and check optimized plans against direct
evaluation of the logical plan.
"""

import math

from hypothesis import given, settings, strategies as st

from repro import Catalog, MemoryTable, Schema
from repro.core import rex as rexmod
from repro.core.builder import RelBuilder
from repro.core.hep import HepPlanner
from repro.core.rel import JoinRelType, LogicalFilter
from repro.core.rex import RexCall, RexInputRef, literal
from repro.core.rex_eval import RexExecutionError, evaluate
from repro.core.rex_simplify import simplify
from repro.core.rules import standard_logical_rules
from repro.core.traits import RelCollation, RelFieldCollation
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.core.volcano import VolcanoPlanner
from repro.runtime import enumerable_rules
from repro.runtime.enumerable import Enumerable
from repro.runtime.operators import execute_to_list, sort_rows

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

rows_strategy = st.lists(
    st.tuples(st.integers(0, 5),
              st.one_of(st.none(), st.integers(-100, 100)),
              st.integers(-1000, 1000)),
    max_size=30)

int_or_none = st.one_of(st.none(), st.integers(-50, 50))


def _comparison(col: int, op, value: int) -> RexCall:
    return RexCall(op, [RexInputRef(col, F.integer()), literal(value)])


predicate_strategy = st.recursive(
    st.builds(_comparison,
              st.integers(0, 2),
              st.sampled_from([rexmod.EQUALS, rexmod.NOT_EQUALS,
                               rexmod.LESS_THAN, rexmod.GREATER_THAN,
                               rexmod.LESS_THAN_OR_EQUAL]),
              st.integers(-100, 100)),
    lambda children: st.one_of(
        st.builds(lambda a, b: RexCall(rexmod.AND, [a, b]), children, children),
        st.builds(lambda a, b: RexCall(rexmod.OR, [a, b]), children, children),
        st.builds(lambda a: RexCall(rexmod.NOT, [a]), children),
    ),
    max_leaves=6)


def _values_rel(rows):
    b = RelBuilder()
    if not rows:
        rows = [(0, None, 0)]
    return b.values(["g", "v", "w"], *rows).build()


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

class TestSimplifyPreservesSemantics:
    @given(rows=rows_strategy, predicate=predicate_strategy)
    @settings(max_examples=60, deadline=None)
    def test_simplified_predicate_equivalent(self, rows, predicate):
        simplified = simplify(predicate)
        for row in rows:
            assert evaluate(predicate, row) == evaluate(simplified, row)


class TestPlannersPreserveSemantics:
    @given(rows=rows_strategy, predicate=predicate_strategy)
    @settings(max_examples=30, deadline=None)
    def test_hep_rewrites_preserve_rows(self, rows, predicate):
        rel = LogicalFilter(_values_rel(rows), predicate)
        rewritten = HepPlanner(rules=standard_logical_rules()).find_best_exp(rel)
        assert sorted(execute_to_list(rewritten),
                      key=repr) == sorted(execute_to_list(rel), key=repr)

    @given(rows=rows_strategy, predicate=predicate_strategy)
    @settings(max_examples=20, deadline=None)
    def test_volcano_plans_preserve_rows(self, rows, predicate):
        rel = LogicalFilter(_values_rel(rows), predicate)
        planner = VolcanoPlanner(
            rules=standard_logical_rules() + enumerable_rules())
        best = planner.optimize(rel)
        assert sorted(execute_to_list(best),
                      key=repr) == sorted(execute_to_list(rel), key=repr)

    @given(left=rows_strategy, right=rows_strategy)
    @settings(max_examples=20, deadline=None)
    def test_join_plans_preserve_rows(self, left, right):
        b = RelBuilder()
        b.push(_values_rel(left))
        b.push(_values_rel(right))
        rel = b.join_using(JoinRelType.INNER, "g").build()
        planner = VolcanoPlanner(
            rules=standard_logical_rules() + enumerable_rules())
        best = planner.optimize(rel)
        assert sorted(execute_to_list(best),
                      key=repr) == sorted(execute_to_list(rel), key=repr)


class TestAggregateInvariants:
    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_group_sums_match_python(self, rows):
        rel = _values_rel(rows)
        b = RelBuilder()
        b.push(rel)
        agg = b.aggregate(b.group_key("g"),
                          b.sum(False, "s", b.field("w")),
                          b.count_star("c")).build()
        result = {g: (s, c) for g, s, c in execute_to_list(agg)}
        effective = rows or [(0, None, 0)]
        expected = {}
        for g, _v, w in effective:
            s, c = expected.get(g, (0, 0))
            expected[g] = (s + w, c + 1)
        assert result == expected

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_count_args_skips_nulls(self, rows):
        rel = _values_rel(rows)
        b = RelBuilder()
        b.push(rel)
        agg = b.aggregate(b.group_key(),
                          b.count(False, "c", b.field("v"))).build()
        (row,) = execute_to_list(agg)
        effective = rows or [(0, None, 0)]
        assert row[0] == sum(1 for r in effective if r[1] is not None)


class TestSortInvariants:
    @given(rows=st.lists(st.tuples(int_or_none, st.integers(0, 9)), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_sort_matches_python_semantics(self, rows):
        out = sort_rows(list(rows), RelCollation([RelFieldCollation(0)]))
        non_null = [r for r in rows if r[0] is not None]
        nulls = [r for r in rows if r[0] is None]
        assert [r[0] for r in out] == \
            [r[0] for r in sorted(non_null, key=lambda r: r[0])] + [None] * len(nulls)

    @given(rows=st.lists(st.tuples(st.integers(-5, 5), st.integers(0, 9)),
                         max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_sort_is_stable(self, rows):
        out = sort_rows(list(rows), RelCollation([RelFieldCollation(0)]))
        for key in set(r[0] for r in rows):
            mine = [r for r in out if r[0] == key]
            original = [r for r in rows if r[0] == key]
            assert mine == original


class TestEnumerableMatchesPython:
    @given(items=st.lists(st.integers(-100, 100), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_where_select(self, items):
        out = (Enumerable.of(items)
               .where(lambda x: x % 2 == 0)
               .select(lambda x: x * 3)
               .to_list())
        assert out == [x * 3 for x in items if x % 2 == 0]

    @given(items=st.lists(st.integers(-100, 100), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_distinct_order(self, items):
        out = Enumerable.of(items).distinct().order_by(lambda x: x).to_list()
        assert out == sorted(set(items))

    @given(a=st.lists(st.integers(0, 20), max_size=30),
           b=st.lists(st.integers(0, 20), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_set_operations(self, a, b):
        ea, eb = Enumerable.of(a), Enumerable.of(b)
        assert set(ea.intersect(eb)) == set(a) & set(b)
        assert set(ea.except_(eb)) == set(a) - set(b)
        assert set(ea.union(eb)) == set(a) | set(b)

    @given(items=st.lists(st.integers(1, 100), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_aggregates(self, items):
        e = Enumerable.of(items)
        assert e.sum() == sum(items)
        assert e.min() == min(items)
        assert e.max() == max(items)
        assert e.count() == len(items)
        assert math.isclose(e.average(), sum(items) / len(items))


class TestDigestInvariants:
    @given(predicate=predicate_strategy)
    @settings(max_examples=60, deadline=None)
    def test_digest_deterministic(self, predicate):
        rel1 = LogicalFilter(_values_rel([(1, 2, 3)]), predicate)
        rel2 = LogicalFilter(_values_rel([(1, 2, 3)]), predicate)
        assert rel1.digest == rel2.digest

    @given(predicate=predicate_strategy)
    @settings(max_examples=30, deadline=None)
    def test_volcano_registration_idempotent(self, predicate):
        planner = VolcanoPlanner(rules=[])
        rel = LogicalFilter(_values_rel([(1, 2, 3)]), predicate)
        s1 = planner.register(rel)
        s2 = planner.register(rel.copy())
        assert s1.rel_set.canonical() is s2.rel_set.canonical()


class TestWktRoundtrip:
    @given(x=st.floats(-180, 180, allow_nan=False),
           y=st.floats(-90, 90, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_point_roundtrip(self, x, y):
        from repro.geo import Point, parse_wkt
        p = Point(x, y)
        assert parse_wkt(p.wkt()) == p

    @given(ts=st.integers(0, 10**12), size=st.integers(1, 10**7))
    @settings(max_examples=60, deadline=None)
    def test_tumble_covers_timestamp(self, ts, size):
        from repro.stream import tumble
        start, end = tumble(ts, size)
        assert start <= ts < end
        assert end - start == size
        assert start % size == 0

    @given(ts=st.integers(0, 10**10),
           slide=st.integers(1, 1000))
    @settings(max_examples=60, deadline=None)
    def test_hop_windows_all_cover_timestamp(self, ts, slide):
        from repro.stream import hop
        size = slide * 3
        windows = hop(ts, slide, size)
        assert windows, "every timestamp belongs to at least one window"
        for start, end in windows:
            assert start <= ts < end
            assert end - start == size
