"""Unit tests for relational operators: row types, digests, join info."""

import pytest

from repro.core import rex as rexmod
from repro.core.builder import RelBuilder
from repro.core.rel import (
    JoinInfo,
    JoinRelType,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalValues,
    collect_scans,
    count_nodes,
)
from repro.core.rex import RexCall, RexInputRef, literal
from repro.core.types import DEFAULT_TYPE_FACTORY as F


def two_tables(hr_catalog):
    b = RelBuilder(hr_catalog)
    b.scan("hr", "emps")
    emps = b.build()
    b.scan("hr", "depts")
    depts = b.build()
    return emps, depts


class TestRowTypes:
    def test_scan_row_type(self, hr_catalog):
        emps, _ = two_tables(hr_catalog)
        assert emps.row_type.field_names == (
            "empid", "deptno", "name", "sal", "commission")

    def test_filter_preserves_row_type(self, hr_catalog):
        emps, _ = two_tables(hr_catalog)
        f = LogicalFilter(emps, literal(True))
        assert f.row_type is emps.row_type

    def test_join_concatenates(self, hr_catalog):
        emps, depts = two_tables(hr_catalog)
        join = LogicalJoin(emps, depts, literal(True), JoinRelType.INNER)
        assert join.row_type.field_count == 7
        assert join.row_type.fields[5].name == "deptno"

    def test_left_join_nullifies_right(self, hr_catalog):
        emps, depts = two_tables(hr_catalog)
        join = LogicalJoin(emps, depts, literal(True), JoinRelType.LEFT)
        # depts.deptno is NOT NULL but becomes nullable on the outer side
        assert join.row_type.fields[5].type.nullable

    def test_semi_join_projects_left_only(self, hr_catalog):
        emps, depts = two_tables(hr_catalog)
        join = LogicalJoin(emps, depts, literal(True), JoinRelType.SEMI)
        assert join.row_type.field_count == 5


class TestDigests:
    def test_equal_trees_equal_digests(self, hr_catalog):
        emps1, _ = two_tables(hr_catalog)
        emps2, _ = two_tables(hr_catalog)
        cond = RexCall(rexmod.GREATER_THAN,
                       [RexInputRef(3, F.integer()), literal(100)])
        f1 = LogicalFilter(emps1, cond)
        f2 = LogicalFilter(emps2, cond)
        assert f1.digest == f2.digest

    def test_different_conditions_different_digests(self, hr_catalog):
        emps, _ = two_tables(hr_catalog)
        f1 = LogicalFilter(emps, literal(True))
        f2 = LogicalFilter(emps, literal(False))
        assert f1.digest != f2.digest

    def test_digest_includes_traits(self, hr_catalog):
        from repro.core.traits import Convention, RelTraitSet
        emps, _ = two_tables(hr_catalog)
        other = emps.copy(traits=RelTraitSet(Convention.ENUMERABLE))
        assert emps.digest != other.digest


class TestJoinInfo:
    def test_equi_extraction(self, hr_catalog):
        emps, depts = two_tables(hr_catalog)
        cond = RexCall(rexmod.EQUALS, [
            RexInputRef(1, F.integer()), RexInputRef(5, F.integer())])
        join = LogicalJoin(emps, depts, cond, JoinRelType.INNER)
        info = join.analyze_condition()
        assert info.left_keys == [1]
        assert info.right_keys == [0]
        assert info.is_equi

    def test_reversed_sides(self, hr_catalog):
        emps, depts = two_tables(hr_catalog)
        cond = RexCall(rexmod.EQUALS, [
            RexInputRef(5, F.integer()), RexInputRef(1, F.integer())])
        join = LogicalJoin(emps, depts, cond, JoinRelType.INNER)
        info = join.analyze_condition()
        assert info.left_keys == [1]
        assert info.right_keys == [0]

    def test_non_equi_remainder(self, hr_catalog):
        emps, depts = two_tables(hr_catalog)
        equi = RexCall(rexmod.EQUALS, [
            RexInputRef(1, F.integer()), RexInputRef(5, F.integer())])
        theta = RexCall(rexmod.GREATER_THAN, [
            RexInputRef(3, F.integer()), literal(100)])
        join = LogicalJoin(emps, depts,
                           RexCall(rexmod.AND, [equi, theta]), JoinRelType.INNER)
        info = join.analyze_condition()
        assert info.left_keys == [1]
        assert len(info.non_equi) == 1
        assert not info.is_equi


class TestProjectHelpers:
    def test_identity_detection(self, hr_catalog):
        emps, _ = two_tables(hr_catalog)
        fields = emps.row_type.fields
        p = LogicalProject(
            emps, [RexInputRef(i, f.type) for i, f in enumerate(fields)],
            [f.name for f in fields])
        assert p.is_identity()

    def test_renamed_is_not_identity(self, hr_catalog):
        emps, _ = two_tables(hr_catalog)
        fields = emps.row_type.fields
        p = LogicalProject(
            emps, [RexInputRef(i, f.type) for i, f in enumerate(fields)],
            ["a", "b", "c", "d", "e"])
        assert not p.is_identity()

    def test_permutation(self, hr_catalog):
        emps, _ = two_tables(hr_catalog)
        fields = emps.row_type.fields
        p = LogicalProject(emps, [RexInputRef(2, fields[2].type),
                                  RexInputRef(0, fields[0].type)],
                           ["name", "empid"])
        assert p.permutation() == {0: 2, 1: 0}

    def test_computed_has_no_permutation(self, hr_catalog):
        emps, _ = two_tables(hr_catalog)
        p = LogicalProject(emps, [literal(1)], ["one"])
        assert p.permutation() is None


class TestTreeHelpers:
    def test_count_nodes(self, hr_catalog):
        emps, depts = two_tables(hr_catalog)
        join = LogicalJoin(emps, depts, literal(True), JoinRelType.INNER)
        top = LogicalFilter(join, literal(True))
        assert count_nodes(top) == 4

    def test_collect_scans(self, hr_catalog):
        emps, depts = two_tables(hr_catalog)
        join = LogicalJoin(emps, depts, literal(True), JoinRelType.INNER)
        scans = collect_scans(join)
        assert [s.table.name for s in scans] == ["hr.emps", "hr.depts"]

    def test_explain_is_readable(self, hr_catalog):
        emps, _ = two_tables(hr_catalog)
        text = LogicalFilter(emps, literal(True)).explain()
        assert "LogicalFilter" in text
        assert "LogicalTableScan" in text

    def test_values_empty(self):
        v = LogicalValues.empty(F.struct(["a"], [F.integer()]))
        assert v.tuples == []
        assert v.row_type.field_names == ("a",)

    def test_single_input_accessor_raises_on_join(self, hr_catalog):
        emps, depts = two_tables(hr_catalog)
        join = LogicalJoin(emps, depts, literal(True), JoinRelType.INNER)
        with pytest.raises(ValueError):
            _ = join.input
