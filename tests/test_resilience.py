"""The resilience layer under fault injection: deadlines, retries,
circuit breakers, cancellation, and the no-leak guarantees.

Every integration test drives faults through
:class:`repro.adapters.chaos.ChaosTable` — deterministic injection, so
each scenario replays exactly.  The ``chaos`` marker arms a hard
SIGALRM wall-clock guard (see ``conftest.py``): the suite's contract
is *zero hangs*, so a regression that reintroduces an unbounded wait
fails loudly instead of wedging CI.
"""

import gc
import queue
import threading
import time

import pytest

from repro import Catalog, MemoryTable, Schema
from repro.adapters.chaos import ChaosTable
from repro.adapters.resilience import (
    BreakerRegistry,
    CircuitBreaker,
    RetryPolicy,
)
from repro.avatica import OperationalError, QueryServer
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    Deadline,
    PermanentBackendError,
    StatementCancelled,
    TransientBackendError,
    is_backend_fault,
    is_transient,
)
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import FrameworkConfig, Planner
from repro.runtime.operators import ExecutionContext
from repro.runtime.vectorized.parallel import Region, _iter_queue

N_ROWS = 300
GROUP_SQL = "SELECT k, SUM(v) AS total FROM s.t GROUP BY k"
ORDERED_SQL = ("SELECT k, SUM(v) AS total FROM s.t "
               "GROUP BY k ORDER BY total DESC, k")

#: retry knobs that keep injected-fault tests fast
FAST_RETRY = dict(scan_retry_backoff=0.001, scan_retry_backoff_max=0.002)


def table_rows(n=N_ROWS):
    return [(i, i % 7, (i * 13) % 101) for i in range(n)]


def make_catalog(n=N_ROWS, **chaos_kwargs):
    """A catalog with one (optionally chaos-wrapped) table ``s.t``."""
    catalog = Catalog()
    s = Schema("s")
    catalog.add_schema(s)
    table = MemoryTable(
        "t", ["id", "k", "v"],
        [F.integer(False), F.integer(False), F.integer(False)],
        table_rows(n))
    if chaos_kwargs:
        table = ChaosTable(table, **chaos_kwargs)
    s.add_table(table)
    return catalog, table


def expected_groups(n=N_ROWS):
    out = {}
    for _, k, v in table_rows(n):
        out[k] = out.get(k, 0) + v
    return sorted(out.items())


def planner_for(catalog, **kwargs):
    opts = dict(FAST_RETRY)
    opts.update(kwargs)
    return Planner(FrameworkConfig(catalog, **opts))


def live_workers():
    return [t for t in threading.enumerate()
            if t.name.startswith("repro-worker") and t.is_alive()]


# ---------------------------------------------------------------------------
# Unit tests: the taxonomy and primitives
# ---------------------------------------------------------------------------

class TestPrimitives:
    def test_deadline_none_is_unbounded(self):
        assert Deadline.after(None) is None

    def test_deadline_expiry(self):
        d = Deadline.after(0.01)
        assert d.remaining() <= 0.01
        assert not d.expired()
        time.sleep(0.02)
        assert d.expired()
        assert d.remaining() < 0

    def test_taxonomy_classifiers(self):
        assert is_transient(TransientBackendError("x"))
        assert is_transient(ConnectionError("x"))
        assert not is_transient(PermanentBackendError("x"))
        assert not is_transient(ValueError("x"))
        assert is_backend_fault(TransientBackendError("x"))
        assert is_backend_fault(PermanentBackendError("x"))
        # Control errors are never charged to a backend's breaker.
        assert not is_backend_fault(DeadlineExceeded("x"))
        assert not is_backend_fault(StatementCancelled("x"))
        assert not is_backend_fault(CircuitOpenError("x"))
        assert not is_backend_fault(ValueError("x"))

    def test_retry_policy_deterministic(self):
        p = RetryPolicy(base_delay=0.1, max_delay=1.0)
        assert p.delay(1, token=3) == p.delay(1, token=3)
        assert p.delay(1, token=3) != p.delay(1, token=4)
        assert p.delay(2, token=3) != p.delay(1, token=3)

    def test_retry_policy_capped_exponential(self):
        p = RetryPolicy(base_delay=0.1, max_delay=0.3)
        for attempt, cap in [(1, 0.1), (2, 0.2), (3, 0.3), (6, 0.3)]:
            d = p.delay(attempt)
            assert 0.5 * cap <= d <= cap

    def test_circuit_breaker_transitions(self):
        now = [0.0]
        b = CircuitBreaker(failure_threshold=2, recovery_timeout=10.0,
                           clock=lambda: now[0])
        assert b.state == b.CLOSED and b.allow()
        assert not b.record_failure()         # 1/2
        assert b.record_failure()             # trips
        assert b.state == b.OPEN and not b.allow()
        now[0] = 9.0
        assert not b.allow()                  # still cooling off
        now[0] = 10.0
        assert b.allow()                      # half-open probe admitted
        assert b.state == b.HALF_OPEN
        assert b.record_failure()             # probe failed: re-open
        assert b.state == b.OPEN
        now[0] = 20.0
        assert b.allow()
        b.record_success()                    # probe succeeded: re-close
        assert b.state == b.CLOSED
        assert b.trips == 2

    def test_breaker_registry_scopes_are_independent(self):
        reg = BreakerRegistry(failure_threshold=1)
        backend = object()
        reg.breaker_for(backend, "partition").record_failure()
        assert not reg.breaker_for(backend, "partition").allow()
        assert reg.breaker_for(backend, "scan").allow()

    def test_iter_queue_raises_deadline_not_hangs(self):
        ctx = ExecutionContext(deadline=Deadline.after(0.05))
        region = Region(ctx)
        starving = queue.Queue()  # a producer that never delivers
        with pytest.raises(DeadlineExceeded):
            next(_iter_queue(starving, 1, region))
        assert ctx.deadline_misses == 1


# ---------------------------------------------------------------------------
# Retries
# ---------------------------------------------------------------------------

@pytest.mark.chaos
class TestRetries:
    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_transient_failure_is_retried(self, engine):
        catalog, chaos = make_catalog(fail_after_rows=10, fail_times=1)
        planner = planner_for(catalog, engine=engine)
        result = planner.execute(GROUP_SQL)
        assert sorted(result.rows) == expected_groups()
        assert result.context.retries == 1
        assert chaos.faults_injected == 1
        assert chaos.scans_started == 2  # original + one re-run

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_permanent_failure_is_not_retried(self, engine):
        catalog, chaos = make_catalog(
            fail_after_rows=10, fail_times=-1,
            error_factory=lambda t, p, r: PermanentBackendError("backend gone"))
        planner = planner_for(catalog, engine=engine)
        with pytest.raises(PermanentBackendError):
            planner.execute(GROUP_SQL)
        assert chaos.scans_started == 1

    def test_retry_exhaustion_surfaces_transient_error(self):
        catalog, chaos = make_catalog(fail_after_rows=0, fail_times=-1)
        planner = planner_for(catalog, scan_retry_attempts=3)
        with pytest.raises(TransientBackendError):
            planner.execute(GROUP_SQL)
        assert chaos.scans_started == 3  # max_attempts counts the first try

    def test_plain_bug_is_not_retried(self):
        catalog, chaos = make_catalog(
            fail_after_rows=5, fail_times=-1,
            error_factory=lambda t, p, r: ValueError("boom"))
        planner = planner_for(catalog)
        with pytest.raises(ValueError, match="boom"):
            planner.execute(GROUP_SQL)
        assert chaos.scans_started == 1

    def test_no_duplicate_rows_after_mid_stream_retry(self):
        # The retry skips already-emitted rows: SUM would inflate if
        # the first 20 rows were double-counted.
        catalog, _ = make_catalog(fail_after_rows=20, fail_times=1)
        planner = planner_for(catalog)
        result = planner.execute("SELECT id FROM s.t")
        ids = [r[0] for r in result.rows]
        assert sorted(ids) == list(range(N_ROWS))
        assert len(ids) == len(set(ids))


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

@pytest.mark.chaos
class TestDeadlines:
    @pytest.mark.parametrize("kwargs", [
        dict(engine="row"),
        dict(engine="vectorized"),
        dict(engine="vectorized", parallelism=4),
    ])
    def test_slow_backend_hits_deadline(self, kwargs):
        # ~3s of injected latency against a 0.15s budget: the statement
        # must fail with the typed error well before the scan finishes.
        catalog, _ = make_catalog(fail_after_rows=None, latency_per_row=0.01)
        planner = planner_for(catalog, statement_timeout=0.15, **kwargs)
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            planner.execute(GROUP_SQL)
        assert time.monotonic() - start < 2.0
        assert not live_workers()

    def test_deadline_miss_counted_once(self):
        catalog, _ = make_catalog(latency_per_row=0.01)
        planner = planner_for(catalog, statement_timeout=0.1)
        running = planner.bind(planner.prepare(GROUP_SQL))
        with pytest.raises(DeadlineExceeded):
            list(running.rows)
        assert running.context.deadline_misses == 1

    def test_per_statement_timeout_override_dbapi(self):
        catalog, _ = make_catalog(latency_per_row=0.01)
        server = QueryServer(**FAST_RETRY)
        server.register_catalog("default", catalog)
        conn = server.connect()
        cur = conn.cursor()
        with pytest.raises(OperationalError) as info:
            cur.execute("SELECT * FROM s.t", timeout=0.1).fetchall()
        assert isinstance(info.value.__cause__, DeadlineExceeded)
        # No configured timeout: the same statement completes.
        assert len(conn.execute("SELECT id FROM s.t").fetchall()) == N_ROWS


# ---------------------------------------------------------------------------
# Per-shard retry and the partition breaker fallback
# ---------------------------------------------------------------------------

@pytest.mark.chaos
class TestShardResilience:
    @pytest.mark.parametrize("parallelism", [2, 4])
    def test_only_failed_shard_is_rescanned(self, parallelism):
        catalog, chaos = make_catalog(
            fail_after_rows=5, fail_times=1, only_partition=1)
        planner = planner_for(catalog, engine="vectorized",
                              parallelism=parallelism)
        result = planner.execute(GROUP_SQL)
        assert sorted(result.rows) == expected_groups()
        assert result.context.retries == 1
        # Every shard scanned once, plus exactly one re-run of the
        # failed shard — siblings were not restarted.
        assert chaos.partition_scans_started == parallelism + 1
        assert chaos.scans_started == 0  # pushdown actually happened

    @pytest.mark.parametrize("parallelism", [2, 4])
    def test_windowed_query_survives_transient_shard_failure(self, parallelism):
        """A shard-local window over a chaos-partitioned scan: the
        failed shard's retry replays with the already-emitted rows
        skipped, so the window's gathered partition input must contain
        each row exactly once — a duplicated or dropped row would shift
        every running-sum frame and LAG offset after it."""
        sql = ("SELECT id, "
               "SUM(v) OVER (PARTITION BY k ORDER BY id), "
               "LAG(v) OVER (PARTITION BY k ORDER BY id), "
               "ROW_NUMBER() OVER (PARTITION BY k ORDER BY id) "
               "FROM s.t")
        clean_catalog, _ = make_catalog()
        expected = sorted(planner_for(clean_catalog).execute(sql).rows)
        catalog, chaos = make_catalog(
            fail_after_rows=5, fail_times=1, only_partition=1)
        planner = planner_for(catalog, engine="vectorized",
                              parallelism=parallelism)
        plan = planner.optimize(planner.rel(sql))
        assert "VectorizedWindow" in plan.explain()
        assert "HashExchange" not in plan.explain()
        result = planner.execute(sql)
        assert sorted(result.rows) == expected
        assert result.context.retries == 1
        # Only the failed shard re-ran; the window saw no shuffle.
        assert chaos.partition_scans_started == parallelism + 1
        assert chaos.scans_started == 0
        assert result.context.rows_shuffled == 0

    def test_open_partition_breaker_degrades_to_gather_then_shard(self):
        catalog, chaos = make_catalog(
            fail_after_rows=0, fail_times=-1, only_partition=0)
        planner = planner_for(catalog, engine="vectorized", parallelism=2,
                              scan_retry_attempts=1,
                              breaker_failure_threshold=1)
        with pytest.raises(TransientBackendError):
            planner.execute(GROUP_SQL)
        # The "partition" breaker is now open; the next statement must
        # degrade to the serial-scan-then-reshard baseline and succeed
        # (the plain scan path is healthy).
        result = planner.execute(GROUP_SQL)
        assert sorted(result.rows) == expected_groups()
        assert result.context.shard_fallbacks >= 1
        assert result.context.breaker_rejections >= 1
        snap = planner.breakers.snapshot()
        assert snap["t/partition"]["state"] == "open"


# ---------------------------------------------------------------------------
# Circuit breaker across statements
# ---------------------------------------------------------------------------

@pytest.mark.chaos
class TestBreakers:
    def test_fail_fast_then_half_open_recovery(self):
        catalog, chaos = make_catalog(fail_after_rows=0, fail_times=-1)
        planner = planner_for(catalog, scan_retry_attempts=1,
                              breaker_failure_threshold=1,
                              breaker_recovery_timeout=0.05)
        with pytest.raises(TransientBackendError):
            planner.execute(GROUP_SQL)
        assert planner.breakers.snapshot()["t/scan"]["state"] == "open"
        # Open: fails fast without touching the backend.
        scans_before = chaos.scans_started
        with pytest.raises(CircuitOpenError):
            planner.execute(GROUP_SQL)
        assert chaos.scans_started == scans_before
        # Backend recovers; after the cool-off the half-open probe
        # succeeds and the breaker re-closes.
        chaos.heal()
        time.sleep(0.06)
        result = planner.execute(GROUP_SQL)
        assert sorted(result.rows) == expected_groups()
        assert planner.breakers.snapshot()["t/scan"]["state"] == "closed"


# ---------------------------------------------------------------------------
# Error propagation through nested exchange regions (satellite 3)
# ---------------------------------------------------------------------------

@pytest.mark.chaos
class TestExchangeErrorPropagation:
    """A scan raising mid-stream below exchanges must surface the
    ORIGINAL exception at the gather — never ``queue.Empty``, never a
    hang — and leave no worker threads behind."""

    @pytest.mark.parametrize("parallelism", [2, 4])
    @pytest.mark.parametrize("sql", [GROUP_SQL, ORDERED_SQL],
                             ids=["hash-exchange", "ordered-merge"])
    def test_original_error_surfaces(self, sql, parallelism):
        catalog, _ = make_catalog(
            fail_after_rows=50, fail_times=-1,
            error_factory=lambda t, p, r: ValueError("boom"))
        planner = planner_for(catalog, engine="vectorized",
                              parallelism=parallelism,
                              partitioned_scans=False)
        with pytest.raises(ValueError, match="boom"):
            planner.execute(sql)
        assert not live_workers()


# ---------------------------------------------------------------------------
# Leak regressions (satellites 1 + 2)
# ---------------------------------------------------------------------------

@pytest.mark.chaos
class TestNoLeaks:
    def test_no_worker_threads_after_completion(self):
        catalog, _ = make_catalog(n=2000)
        planner = planner_for(catalog, engine="vectorized", parallelism=4,
                              partitioned_scans=False)
        result = planner.execute(GROUP_SQL)
        assert sorted(result.rows) == expected_groups(2000)
        assert not live_workers()

    def test_no_worker_threads_after_abandoned_cursor(self):
        catalog, _ = make_catalog(n=5000)
        server = QueryServer(engine="vectorized", parallelism=4,
                             partitioned_scans=False, **FAST_RETRY)
        server.register_catalog("default", catalog)
        conn = server.connect()
        cur = conn.execute("SELECT id, k, v FROM s.t")
        for _ in range(3):
            assert cur.fetchone() is not None
        cur.close()  # abandon mid-stream: shutdown joins the region
        assert not live_workers()
        assert server.stats()["resilience"]["worker_leaks"] == 0

    def test_admission_slot_released_when_statement_errors(self):
        catalog, chaos = make_catalog(
            fail_after_rows=10, fail_times=1,
            error_factory=lambda t, p, r: PermanentBackendError("dead"))
        server = QueryServer(max_concurrent_statements=1,
                             admission_timeout=0.3, **FAST_RETRY)
        server.register_catalog("default", catalog)
        conn = server.connect()
        with pytest.raises(OperationalError):
            conn.execute("SELECT id FROM s.t").fetchall()
        # The only slot must be free again, or this admission times out.
        assert len(conn.execute("SELECT id FROM s.t").fetchall()) == N_ROWS
        assert server.stats()["statements"]["active"] == 0

    def test_admission_slot_released_when_cursor_is_garbage_collected(self):
        catalog, _ = make_catalog(n=2000)
        server = QueryServer(max_concurrent_statements=1,
                             admission_timeout=0.3, **FAST_RETRY)
        server.register_catalog("default", catalog)
        conn = server.connect()
        cur = conn.execute("SELECT id FROM s.t")
        assert cur.fetchone() is not None  # slot held, stream live
        del cur
        gc.collect()
        assert len(conn.execute("SELECT id FROM s.t").fetchall()) == 2000
        assert server.stats()["statements"]["active"] == 0


# ---------------------------------------------------------------------------
# Cancellation: client-side and server-side kill
# ---------------------------------------------------------------------------

@pytest.mark.chaos
class TestCancellation:
    def _serve(self, n=5000, **server_kwargs):
        catalog, _ = make_catalog(n=n, latency_per_row=0.0005)
        server = QueryServer(**FAST_RETRY, **server_kwargs)
        server.register_catalog("default", catalog)
        return server, server.connect()

    def test_cursor_cancel(self):
        server, conn = self._serve()
        cur = conn.execute("SELECT id FROM s.t")
        for _ in range(3):
            assert cur.fetchone() is not None
        cur.cancel()
        with pytest.raises(OperationalError) as info:
            cur.fetchall()
        assert isinstance(info.value.__cause__, StatementCancelled)
        assert server.stats()["resilience"]["cancelled"] == 1
        assert server.stats()["statements"]["active"] == 0
        assert not live_workers()

    def test_server_side_kill_by_statement_id(self):
        server, conn = self._serve(parallelism=2, engine="vectorized")
        cur = conn.execute("SELECT id FROM s.t")
        assert cur.fetchone() is not None
        sid = cur.statement_id
        assert sid in server.statements()
        assert server.cancel_statement(sid) is True
        with pytest.raises(OperationalError):
            cur.fetchall()
        assert server.cancel_statement(sid) is False  # already finished
        assert server.statements() == {}
        assert not live_workers()

    def test_cancel_all(self):
        server, conn = self._serve()
        cursors = [conn.execute("SELECT id FROM s.t") for _ in range(3)]
        for cur in cursors:
            assert cur.fetchone() is not None
        assert server.cancel_all() == 3
        for cur in cursors:
            with pytest.raises(OperationalError):
                cur.fetchall()
        assert server.stats()["resilience"]["cancelled"] == 3

    def test_unknown_statement_id(self):
        server, _ = self._serve(n=10)
        assert server.cancel_statement(999) is False


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

@pytest.mark.chaos
class TestStats:
    def test_resilience_counters_surface_in_server_stats(self):
        catalog, _ = make_catalog(fail_after_rows=10, fail_times=1)
        server = QueryServer(**FAST_RETRY)
        server.register_catalog("default", catalog)
        conn = server.connect()
        assert sorted(conn.execute(GROUP_SQL).fetchall()) == expected_groups()
        stats = server.stats()
        assert stats["resilience"]["retries"] == 1
        assert stats["resilience"]["deadline_misses"] == 0
        assert stats["breakers"]["t/scan"]["state"] == "closed"
        assert stats["statements"]["live"] == 0
