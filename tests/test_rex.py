"""Unit tests for row expressions: digests, visitors, helpers."""

import pytest

from repro.core import rex as rexmod
from repro.core.rex import (
    InputRefRemapper,
    InputRefShifter,
    RexCall,
    RexFieldAccess,
    RexInputRef,
    RexLiteral,
    RexOver,
    RexWindowBound,
    SqlKind,
    compose_conjunction,
    contains_over,
    decompose_conjunction,
    decompose_disjunction,
    input_refs_used,
    literal,
)
from repro.core.types import DEFAULT_TYPE_FACTORY as F


class TestLiterals:
    def test_type_inference(self):
        assert literal(5).type.type_name.value == "INTEGER"
        assert literal(1.5).type.type_name.value == "DOUBLE"
        assert literal("x").type.is_character
        assert literal(True).type.is_boolean
        assert literal(None).type.type_name.value == "NULL"

    def test_digest(self):
        assert literal(5).digest == "5"
        assert literal("ab").digest == "'ab'"

    def test_always_true_false(self):
        assert literal(True).is_always_true()
        assert literal(False).is_always_false()
        assert not literal(1).is_always_true()


class TestCalls:
    def test_equality_by_digest(self):
        a = RexCall(rexmod.PLUS, [literal(1), literal(2)])
        b = RexCall(rexmod.PLUS, [literal(1), literal(2)])
        assert a == b
        assert hash(a) == hash(b)
        c = RexCall(rexmod.PLUS, [literal(2), literal(1)])
        assert a != c

    def test_return_type_inference(self):
        cmp = RexCall(rexmod.LESS_THAN, [literal(1), literal(2)])
        assert cmp.type.is_boolean
        total = RexCall(rexmod.PLUS, [literal(1), literal(2.5)])
        assert total.type.type_name.value == "DOUBLE"

    def test_input_ref_negative_rejected(self):
        with pytest.raises(ValueError):
            RexInputRef(-1, F.integer())

    def test_clone_preserves_type(self):
        call = RexCall(rexmod.CAST, [literal(1)], F.varchar())
        clone = call.clone([literal(2)])
        assert clone.type is call.type

    def test_field_access_digest(self):
        fa = RexFieldAccess(RexInputRef(0, F.struct(["x"], [F.integer()])),
                            "x", F.integer())
        assert fa.digest == "$0.x"


class TestKindAlgebra:
    def test_reverse(self):
        assert SqlKind.LESS_THAN.reverse() is SqlKind.GREATER_THAN
        assert SqlKind.EQUALS.reverse() is SqlKind.EQUALS

    def test_negate(self):
        assert SqlKind.EQUALS.negate() is SqlKind.NOT_EQUALS
        assert SqlKind.LESS_THAN.negate() is SqlKind.GREATER_THAN_OR_EQUAL
        assert SqlKind.AND.negate() is None


class TestConjunctions:
    def test_decompose_nested(self):
        a = RexCall(rexmod.EQUALS, [RexInputRef(0, F.integer()), literal(1)])
        b = RexCall(rexmod.EQUALS, [RexInputRef(1, F.integer()), literal(2)])
        c = RexCall(rexmod.EQUALS, [RexInputRef(2, F.integer()), literal(3)])
        node = RexCall(rexmod.AND, [RexCall(rexmod.AND, [a, b]), c])
        assert decompose_conjunction(node) == [a, b, c]

    def test_decompose_true_is_empty(self):
        assert decompose_conjunction(literal(True)) == []
        assert decompose_conjunction(None) == []

    def test_compose_roundtrip(self):
        a = RexCall(rexmod.EQUALS, [RexInputRef(0, F.integer()), literal(1)])
        b = RexCall(rexmod.EQUALS, [RexInputRef(1, F.integer()), literal(2)])
        composed = compose_conjunction([a, b])
        assert decompose_conjunction(composed) == [a, b]

    def test_compose_empty_is_none(self):
        assert compose_conjunction([]) is None
        assert compose_conjunction([literal(True)]) is None

    def test_decompose_disjunction(self):
        a = literal(1)
        b = literal(2)
        node = RexCall(rexmod.OR, [a, b])
        assert decompose_disjunction(node) == [a, b]


class TestVisitors:
    def test_input_refs_used(self):
        expr = RexCall(rexmod.AND, [
            RexCall(rexmod.EQUALS, [RexInputRef(0, F.integer()), literal(1)]),
            RexCall(rexmod.GREATER_THAN, [RexInputRef(3, F.integer()),
                                          RexInputRef(5, F.integer())]),
        ])
        assert input_refs_used(expr) == {0, 3, 5}

    def test_shifter(self):
        expr = RexCall(rexmod.PLUS, [RexInputRef(2, F.integer()),
                                     RexInputRef(5, F.integer())])
        shifted = InputRefShifter(-2).apply(expr)
        assert input_refs_used(shifted) == {0, 3}

    def test_shifter_with_start(self):
        expr = RexCall(rexmod.PLUS, [RexInputRef(1, F.integer()),
                                     RexInputRef(5, F.integer())])
        shifted = InputRefShifter(10, start=3).apply(expr)
        assert input_refs_used(shifted) == {1, 15}

    def test_remapper_to_expr(self):
        expr = RexInputRef(0, F.integer())
        mapped = InputRefRemapper({0: literal(42)}).apply(expr)
        assert mapped.digest == "42"

    def test_shuttle_identity_preserved(self):
        expr = RexCall(rexmod.PLUS, [literal(1), literal(2)])
        assert InputRefShifter(3).apply(expr) is expr


class TestWindows:
    def _over(self):
        return RexOver(rexmod.SUM, [RexInputRef(1, F.integer())],
                       [RexInputRef(0, F.integer())],
                       [(RexInputRef(2, F.integer()), False)],
                       RexWindowBound.UNBOUNDED_PRECEDING,
                       RexWindowBound.CURRENT_ROW, rows=True)

    def test_digest_mentions_window(self):
        d = self._over().digest
        assert "PARTITION BY $0" in d
        assert "ORDER BY $2" in d
        assert "ROWS BETWEEN" in d

    def test_contains_over(self):
        over = self._over()
        wrapped = RexCall(rexmod.PLUS, [over, literal(1)])
        assert contains_over(wrapped)
        assert not contains_over(literal(1))

    def test_bad_bound_kind(self):
        with pytest.raises(ValueError):
            RexWindowBound("SIDEWAYS")


class TestOperatorTable:
    def test_lookup_case_insensitive(self):
        assert rexmod.OPERATORS.lookup("count") is rexmod.COUNT
        assert rexmod.OPERATORS.lookup("SUM") is rexmod.SUM

    def test_register_function(self):
        op = rexmod.register_function("MY_TEST_FN")
        assert rexmod.OPERATORS.lookup("my_test_fn") is op

    def test_aggregate_flag(self):
        assert rexmod.SUM.is_aggregate
        assert not rexmod.PLUS.is_aggregate
