"""Unit tests for the row-expression interpreter (three-valued logic)."""

import pytest

from repro.core import rex as rexmod
from repro.core.rex import RexCall, RexDynamicParam, RexInputRef, literal
from repro.core.rex_eval import (
    EvalContext,
    RexExecutionError,
    cast_value,
    evaluate,
)
from repro.core.types import DEFAULT_TYPE_FACTORY as F


def ref(i, type_=None):
    return RexInputRef(i, type_ or F.integer())


def call(op, *operands):
    return RexCall(op, list(operands))


class TestArithmetic:
    def test_basic(self):
        assert evaluate(call(rexmod.PLUS, literal(2), literal(3)), ()) == 5
        assert evaluate(call(rexmod.TIMES, literal(2), literal(3)), ()) == 6
        assert evaluate(call(rexmod.MINUS, literal(2), literal(3)), ()) == -1

    def test_integer_division(self):
        assert evaluate(call(rexmod.DIVIDE, literal(7), literal(2)), ()) == 3.5
        assert evaluate(call(rexmod.DIVIDE, literal(6), literal(2)), ()) == 3

    def test_division_by_zero(self):
        with pytest.raises(RexExecutionError):
            evaluate(call(rexmod.DIVIDE, literal(1), literal(0)), ())

    def test_null_propagates(self):
        assert evaluate(call(rexmod.PLUS, literal(None), literal(3)), ()) is None

    def test_mod(self):
        assert evaluate(call(rexmod.MOD, literal(7), literal(3)), ()) == 1


class TestThreeValuedLogic:
    def test_and(self):
        t, f, n = literal(True), literal(False), literal(None)
        assert evaluate(call(rexmod.AND, t, t), ()) is True
        assert evaluate(call(rexmod.AND, t, f), ()) is False
        assert evaluate(call(rexmod.AND, f, n), ()) is False  # short circuit
        assert evaluate(call(rexmod.AND, t, n), ()) is None

    def test_or(self):
        t, f, n = literal(True), literal(False), literal(None)
        assert evaluate(call(rexmod.OR, f, t), ()) is True
        assert evaluate(call(rexmod.OR, t, n), ()) is True
        assert evaluate(call(rexmod.OR, f, n), ()) is None

    def test_not(self):
        assert evaluate(call(rexmod.NOT, literal(True)), ()) is False
        assert evaluate(call(rexmod.NOT, literal(None)), ()) is None

    def test_null_comparison_is_null(self):
        assert evaluate(call(rexmod.EQUALS, literal(None), literal(1)), ()) is None

    def test_is_null_tests(self):
        assert evaluate(call(rexmod.IS_NULL, literal(None)), ()) is True
        assert evaluate(call(rexmod.IS_NOT_NULL, literal(None)), ()) is False
        assert evaluate(call(rexmod.IS_TRUE, literal(None)), ()) is False


class TestRowAccess:
    def test_input_ref(self):
        assert evaluate(ref(1), (10, 20)) == 20

    def test_dynamic_param(self):
        ctx = EvalContext(parameters=[42])
        assert evaluate(RexDynamicParam(0, F.any()), (), ctx) == 42

    def test_unbound_param_raises(self):
        with pytest.raises(RexExecutionError):
            evaluate(RexDynamicParam(2, F.any()), (), EvalContext())


class TestStringFunctions:
    def test_like(self):
        assert evaluate(call(rexmod.LIKE, literal("hello"), literal("he%")), ()) is True
        assert evaluate(call(rexmod.LIKE, literal("hello"), literal("h_llo")), ()) is True
        assert evaluate(call(rexmod.LIKE, literal("hello"), literal("x%")), ()) is False

    def test_like_escapes_regex_chars(self):
        assert evaluate(call(rexmod.LIKE, literal("a.c"), literal("a.c")), ()) is True
        assert evaluate(call(rexmod.LIKE, literal("abc"), literal("a.c")), ()) is False

    def test_concat_upper_lower(self):
        assert evaluate(call(rexmod.CONCAT, literal("a"), literal("b")), ()) == "ab"
        assert evaluate(call(rexmod.UPPER, literal("ab")), ()) == "AB"
        assert evaluate(call(rexmod.LOWER, literal("AB")), ()) == "ab"

    def test_substring(self):
        assert evaluate(call(rexmod.SUBSTRING, literal("hello"), literal(2)), ()) == "ello"
        assert evaluate(
            call(rexmod.SUBSTRING, literal("hello"), literal(2), literal(3)), ()) == "ell"

    def test_char_length_trim(self):
        assert evaluate(call(rexmod.CHAR_LENGTH, literal("abc")), ()) == 3
        assert evaluate(call(rexmod.TRIM, literal("  x ")), ()) == "x"


class TestSpecialForms:
    def test_case(self):
        expr = RexCall(rexmod.CASE, [
            call(rexmod.GREATER_THAN, ref(0), literal(10)), literal("big"),
            literal("small")], F.varchar())
        assert evaluate(expr, (20,)) == "big"
        assert evaluate(expr, (5,)) == "small"

    def test_case_no_else(self):
        expr = RexCall(rexmod.CASE, [
            call(rexmod.GREATER_THAN, ref(0), literal(10)), literal("big")],
            F.varchar())
        assert evaluate(expr, (5,)) is None

    def test_coalesce(self):
        expr = call(rexmod.COALESCE, literal(None), literal(None), literal(7))
        assert evaluate(expr, ()) == 7

    def test_in_list(self):
        expr = call(rexmod.IN, ref(0), literal(1), literal(2))
        assert evaluate(expr, (2,)) is True
        assert evaluate(expr, (3,)) is False

    def test_in_with_null_candidate(self):
        expr = call(rexmod.IN, ref(0), literal(1), literal(None))
        assert evaluate(expr, (1,)) is True
        assert evaluate(expr, (3,)) is None  # unknown, not false

    def test_between(self):
        expr = call(rexmod.BETWEEN, ref(0), literal(1), literal(5))
        assert evaluate(expr, (3,)) is True
        assert evaluate(expr, (9,)) is False

    def test_item_array_one_based(self):
        arr = literal(["a", "b"], F.array(F.varchar()))
        assert evaluate(call(rexmod.ITEM, arr, literal(1)), ()) == "a"
        assert evaluate(call(rexmod.ITEM, arr, literal(3)), ()) is None

    def test_item_map(self):
        m = literal({"city": "SF"}, F.map(F.varchar(), F.any()))
        assert evaluate(call(rexmod.ITEM, m, literal("city")), ()) == "SF"
        assert evaluate(call(rexmod.ITEM, m, literal("nope")), ()) is None

    def test_row_constructor(self):
        expr = call(rexmod.ROW, literal(1), literal("a"))
        assert evaluate(expr, ()) == (1, "a")


class TestCast:
    def test_numeric_casts(self):
        assert cast_value("42", F.integer()) == 42
        assert cast_value("4.5", F.double()) == 4.5
        assert cast_value(3.9, F.integer()) == 3
        assert cast_value("3.5", F.integer()) == 3

    def test_string_cast_truncates(self):
        assert cast_value(12345, F.varchar(3)) == "123"

    def test_boolean_cast(self):
        assert cast_value("true", F.boolean()) is True
        assert cast_value("no", F.boolean()) is False
        assert cast_value(0, F.boolean()) is False

    def test_null_passthrough(self):
        assert cast_value(None, F.integer()) is None

    def test_bad_cast_raises(self):
        with pytest.raises(RexExecutionError):
            cast_value("abc", F.integer())

    def test_cast_call(self):
        expr = RexCall(rexmod.CAST, [literal("7")], F.integer())
        assert evaluate(expr, ()) == 7


class TestMathFunctions:
    def test_abs_floor_ceil(self):
        assert evaluate(call(rexmod.ABS, literal(-3)), ()) == 3
        assert evaluate(call(rexmod.FLOOR, literal(3.7)), ()) == 3
        assert evaluate(call(rexmod.CEIL, literal(3.2)), ()) == 4

    def test_power_sqrt(self):
        assert evaluate(call(rexmod.POWER, literal(2), literal(10)), ()) == 1024.0
        assert evaluate(call(rexmod.SQRT, literal(16)), ()) == 4.0


class TestRegisteredFunctions:
    def test_registry_dispatch(self):
        from repro.core.rex_eval import register_runtime_function
        op = rexmod.register_function("DOUBLE_IT_TEST")
        register_runtime_function("DOUBLE_IT_TEST", lambda x: x * 2)
        assert evaluate(call(op, literal(21)), ()) == 42

    def test_unknown_function_raises(self):
        op = rexmod.SqlOperator("NO_IMPL_FN", rexmod.SqlKind.FUNCTION)
        with pytest.raises(RexExecutionError):
            evaluate(RexCall(op, [literal(1)]), ())


class TestTumble:
    def test_tumble_buckets(self):
        expr = call(rexmod.TUMBLE, literal(3_700_000), literal(3_600_000))
        assert evaluate(expr, ()) == 3_600_000
        end = call(rexmod.TUMBLE_END, literal(3_700_000), literal(3_600_000))
        assert evaluate(end, ()) == 7_200_000
