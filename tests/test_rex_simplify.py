"""Unit tests for expression simplification / constant folding."""

from repro.core import rex as rexmod
from repro.core.rex import RexCall, RexInputRef, RexLiteral, literal
from repro.core.rex_simplify import is_constant, simplify
from repro.core.types import DEFAULT_TYPE_FACTORY as F


def ref(i, nullable=True):
    return RexInputRef(i, F.integer(nullable))


def call(op, *operands):
    return RexCall(op, list(operands))


class TestConstantFolding:
    def test_arithmetic(self):
        folded = simplify(call(rexmod.PLUS, literal(2), literal(3)))
        assert isinstance(folded, RexLiteral) and folded.value == 5

    def test_nested(self):
        expr = call(rexmod.TIMES, call(rexmod.PLUS, literal(1), literal(2)),
                    literal(4))
        assert simplify(expr).value == 12

    def test_comparison(self):
        assert simplify(call(rexmod.LESS_THAN, literal(1), literal(2))).value is True

    def test_non_constant_untouched(self):
        expr = call(rexmod.PLUS, ref(0), literal(3))
        assert simplify(expr).digest == expr.digest

    def test_partial_fold_inside(self):
        expr = call(rexmod.PLUS, ref(0),
                    call(rexmod.TIMES, literal(2), literal(5)))
        assert simplify(expr).digest == "+($0, 10)"

    def test_error_during_fold_left_alone(self):
        expr = call(rexmod.DIVIDE, literal(1), literal(0))
        assert simplify(expr).digest == expr.digest

    def test_is_constant(self):
        assert is_constant(literal(1))
        assert is_constant(call(rexmod.PLUS, literal(1), literal(2)))
        assert not is_constant(ref(0))


class TestAndSimplification:
    def test_true_removed(self):
        cond = call(rexmod.EQUALS, ref(0), literal(1))
        expr = call(rexmod.AND, literal(True), cond)
        assert simplify(expr).digest == cond.digest

    def test_false_dominates(self):
        expr = call(rexmod.AND, call(rexmod.EQUALS, ref(0), literal(1)),
                    literal(False))
        assert simplify(expr).is_always_false()

    def test_duplicates_removed(self):
        cond = call(rexmod.EQUALS, ref(0), literal(1))
        expr = call(rexmod.AND, cond, cond)
        assert simplify(expr).digest == cond.digest

    def test_contradiction(self):
        cond = call(rexmod.IS_NULL, ref(0))
        expr = call(rexmod.AND, cond, call(rexmod.NOT, cond))
        assert simplify(expr).is_always_false()

    def test_all_true_collapses(self):
        expr = call(rexmod.AND, literal(True), literal(True))
        assert simplify(expr).is_always_true()


class TestOrSimplification:
    def test_true_dominates(self):
        expr = call(rexmod.OR, call(rexmod.EQUALS, ref(0), literal(1)),
                    literal(True))
        assert simplify(expr).is_always_true()

    def test_false_removed(self):
        cond = call(rexmod.EQUALS, ref(0), literal(1))
        expr = call(rexmod.OR, literal(False), cond)
        assert simplify(expr).digest == cond.digest

    def test_all_false(self):
        expr = call(rexmod.OR, literal(False), literal(False))
        assert simplify(expr).is_always_false()


class TestNotSimplification:
    def test_double_negation(self):
        cond = call(rexmod.IS_NULL, ref(0))
        expr = call(rexmod.NOT, call(rexmod.NOT, cond))
        assert simplify(expr).digest == cond.digest

    def test_not_comparison_inverted(self):
        expr = call(rexmod.NOT, call(rexmod.LESS_THAN, ref(0), literal(5)))
        assert simplify(expr).digest == ">=($0, 5)"

    def test_not_true(self):
        assert simplify(call(rexmod.NOT, literal(True))).is_always_false()


class TestNullabilityRules:
    def test_is_null_on_not_null_field(self):
        expr = call(rexmod.IS_NULL, ref(0, nullable=False))
        assert simplify(expr).is_always_false()

    def test_is_not_null_on_not_null_field(self):
        expr = call(rexmod.IS_NOT_NULL, ref(0, nullable=False))
        assert simplify(expr).is_always_true()

    def test_is_null_on_nullable_untouched(self):
        expr = call(rexmod.IS_NULL, ref(0, nullable=True))
        assert simplify(expr).digest == expr.digest

    def test_self_equality_not_null(self):
        r = ref(0, nullable=False)
        assert simplify(call(rexmod.EQUALS, r, r)).is_always_true()

    def test_self_equality_nullable_kept(self):
        r = ref(0, nullable=True)
        expr = call(rexmod.EQUALS, r, r)
        assert simplify(expr).digest == expr.digest


class TestCaseSimplification:
    def test_false_branch_dropped(self):
        expr = RexCall(rexmod.CASE, [
            literal(False), literal("dead"),
            call(rexmod.EQUALS, ref(0), literal(1)), literal("live"),
            literal("else")], F.varchar())
        s = simplify(expr)
        assert "dead" not in s.digest

    def test_leading_true_collapses(self):
        expr = RexCall(rexmod.CASE, [
            literal(True), literal("only"), literal("else")], F.varchar())
        assert simplify(expr).digest == "'only'"

    def test_eval_equivalence_after_simplify(self):
        from repro.core.rex_eval import evaluate
        expr = call(rexmod.AND,
                    call(rexmod.OR, literal(False),
                         call(rexmod.GREATER_THAN, ref(0), literal(3))),
                    literal(True))
        simplified = simplify(expr)
        for value in (1, 3, 4, 10):
            assert evaluate(expr, (value,)) == evaluate(simplified, (value,))
