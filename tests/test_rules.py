"""Unit tests for the rule library, applied through the Hep engine."""

import pytest

from repro.core import rex as rexmod
from repro.core.builder import RelBuilder
from repro.core.hep import HepPlanner
from repro.core.rel import (
    Aggregate,
    Filter,
    Join,
    JoinRelType,
    LogicalFilter,
    LogicalProject,
    LogicalSort,
    LogicalValues,
    Project,
    Sort,
    TableScan,
    Union,
    Values,
    count_nodes,
)
from repro.core.rex import RexCall, RexInputRef, literal
from repro.core.rules import (
    AggregateProjectMergeRule,
    AggregateRemoveRule,
    FilterAggregateTransposeRule,
    FilterIntoJoinRule,
    FilterProjectTransposeRule,
    FilterSetOpTransposeRule,
    FilterSimplifyRule,
    ProjectJoinTransposeRule,
    ProjectMergeRule,
    ProjectRemoveRule,
    SortMergeRule,
    SortProjectTransposeRule,
    SortRemoveRule,
    prune_empty_rules,
)
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.runtime.operators import execute_to_list


def apply_rules(rel, rules):
    return HepPlanner(rules=list(rules)).find_best_exp(rel)


def check_equivalent(before, after):
    assert sorted(execute_to_list(before)) == sorted(execute_to_list(after))


class TestFilterIntoJoin:
    def test_paper_figure4(self, sales_catalog):
        """WHERE sales.discount IS NOT NULL moves below the join."""
        b = RelBuilder(sales_catalog)
        b.scan("s", "sales").scan("s", "products")
        b.join_using(JoinRelType.INNER, "productId")
        discount_ref = RexInputRef(2, F.integer())  # sales.discount
        rel = LogicalFilter(b.build(),
                            RexCall(rexmod.IS_NOT_NULL, [discount_ref]))
        result = apply_rules(rel, [FilterIntoJoinRule()])
        assert isinstance(result, Join)
        assert isinstance(result.left, Filter)  # pushed to the sales side
        check_equivalent(rel, result)

    def test_right_side_condition_shifts(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        b.join_using(JoinRelType.INNER, "deptno")
        # dname = 'Sales' references the right input (index 6)
        cond = RexCall(rexmod.EQUALS, [RexInputRef(6, F.varchar()), literal("Sales")])
        rel = LogicalFilter(b.build(), cond)
        result = apply_rules(rel, [FilterIntoJoinRule()])
        assert isinstance(result, Join)
        assert isinstance(result.right, Filter)
        assert result.right.condition.digest == "=($1, 'Sales')"
        check_equivalent(rel, result)

    def test_left_outer_join_blocks_right_push(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        b.join_using(JoinRelType.LEFT, "deptno")
        cond = RexCall(rexmod.EQUALS, [RexInputRef(6, F.varchar()), literal("Sales")])
        rel = LogicalFilter(b.build(), cond)
        result = apply_rules(rel, [FilterIntoJoinRule()])
        # must NOT push below the null-generating side
        assert isinstance(result, Filter)

    def test_mixed_conjuncts_split(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        b.join_using(JoinRelType.INNER, "deptno")
        left_cond = RexCall(rexmod.GREATER_THAN, [RexInputRef(3, F.integer()), literal(7000)])
        right_cond = RexCall(rexmod.EQUALS, [RexInputRef(6, F.varchar()), literal("Sales")])
        rel = LogicalFilter(b.build(), RexCall(rexmod.AND, [left_cond, right_cond]))
        result = apply_rules(rel, [FilterIntoJoinRule()])
        assert isinstance(result, Join)
        assert isinstance(result.left, Filter)
        assert isinstance(result.right, Filter)
        check_equivalent(rel, result)


class TestFilterTranspose:
    def test_filter_through_project(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        b.project_fields("name", "sal")
        cond = RexCall(rexmod.GREATER_THAN, [RexInputRef(1, F.integer()), literal(8000)])
        rel = LogicalFilter(b.build(), cond)
        result = apply_rules(rel, [FilterProjectTransposeRule()])
        assert isinstance(result, Project)
        assert isinstance(result.input, Filter)
        # condition rewritten in terms of the scan's columns ($3 = sal)
        assert "$3" in result.input.condition.digest
        check_equivalent(rel, result)

    def test_filter_through_aggregate_on_keys(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        b.aggregate(b.group_key("deptno"), b.count_star("c"))
        cond = RexCall(rexmod.EQUALS, [RexInputRef(0, F.integer()), literal(10)])
        rel = LogicalFilter(b.build(), cond)
        result = apply_rules(rel, [FilterAggregateTransposeRule()])
        assert isinstance(result, Aggregate)
        assert isinstance(result.input, Filter)
        check_equivalent(rel, result)

    def test_filter_on_agg_result_not_pushed(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        b.aggregate(b.group_key("deptno"), b.count_star("c"))
        cond = RexCall(rexmod.GREATER_THAN, [RexInputRef(1, F.bigint()), literal(1)])
        rel = LogicalFilter(b.build(), cond)
        result = apply_rules(rel, [FilterAggregateTransposeRule()])
        assert isinstance(result, Filter)  # HAVING-style stays above

    def test_filter_through_union(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").project_fields("deptno")
        b.scan("hr", "depts").project_fields("deptno")
        b.union(all_=True)
        cond = RexCall(rexmod.EQUALS, [RexInputRef(0, F.integer()), literal(10)])
        rel = LogicalFilter(b.build(), cond)
        result = apply_rules(rel, [FilterSetOpTransposeRule()])
        assert isinstance(result, Union)
        assert all(isinstance(i, Filter) for i in result.inputs)
        check_equivalent(rel, result)


class TestProjectRules:
    def test_project_merge(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        b.project_fields("empid", "deptno", "name", "sal")
        b.project_fields("name", "sal")
        rel = b.build()
        result = apply_rules(rel, [ProjectMergeRule()])
        assert isinstance(result, Project)
        assert isinstance(result.input, TableScan)
        check_equivalent(rel, result)

    def test_identity_project_removed(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        fields = b.peek().row_type.fields
        b.project([RexInputRef(i, f.type) for i, f in enumerate(fields)],
                  [f.name for f in fields])
        rel = b.build()
        result = apply_rules(rel, [ProjectRemoveRule()])
        assert isinstance(result, TableScan)

    def test_project_join_transpose_trims(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        b.join_using(JoinRelType.INNER, "deptno")
        b.project_fields("name", "dname")
        rel = b.build()
        result = apply_rules(rel, [ProjectJoinTransposeRule()])
        join = result.input if isinstance(result, Project) else result
        assert isinstance(join, Join)
        # the join's inputs got narrower
        assert join.left.row_type.field_count < 5
        check_equivalent(rel, result)


class TestSortRules:
    def test_sort_removed_when_scan_sorted(self, hr_catalog):
        """The paper's example: input already ordered → sort removed."""
        from repro.core.traits import RelCollation
        from repro.schema.core import Statistic
        hr = hr_catalog.resolve_schema(["hr"])
        emps = hr.table("emps")
        emps.statistic = Statistic(row_count=5, collation=RelCollation.of(0))
        hr_catalog._opt_tables.clear()
        b = RelBuilder(hr_catalog)
        rel = b.scan("hr", "emps").sort("empid").build()
        result = apply_rules(rel, [SortRemoveRule()])
        assert not isinstance(result, Sort)

    def test_sort_kept_when_unsorted(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = b.scan("hr", "emps").sort("sal").build()
        result = apply_rules(rel, [SortRemoveRule()])
        assert isinstance(result, Sort)

    def test_sort_sort_merge(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        inner = b.scan("hr", "emps").sort("sal").build()
        outer = LogicalSort(inner, inner.collation)
        from repro.core.traits import RelCollation, RelFieldCollation
        outer = LogicalSort(inner, RelCollation([RelFieldCollation(0)]))
        result = apply_rules(outer, [SortMergeRule()])
        assert isinstance(result, Sort)
        assert isinstance(result.input, TableScan)

    def test_limit_fused_into_sort(self, hr_catalog):
        from repro.core.traits import RelCollation
        b = RelBuilder(hr_catalog)
        inner = b.scan("hr", "emps").sort("sal").build()
        limit = LogicalSort(inner, RelCollation.EMPTY, None, 3)
        result = apply_rules(limit, [SortMergeRule()])
        assert isinstance(result, Sort)
        assert result.fetch == 3
        assert result.collation.keys == inner.collation.keys


class TestPruneEmpty:
    def test_filter_false_becomes_empty_values(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = LogicalFilter(b.scan("hr", "emps").build(), literal(False))
        result = apply_rules(rel, prune_empty_rules())
        assert isinstance(result, Values) and not result.tuples

    def test_join_with_empty_side_pruned(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        empty = LogicalValues(b.scan("hr", "depts").build().row_type, [])
        b2 = RelBuilder(hr_catalog)
        emps = b2.scan("hr", "emps").build()
        from repro.core.rel import LogicalJoin
        join = LogicalJoin(emps, empty, literal(True), JoinRelType.INNER)
        result = apply_rules(join, prune_empty_rules())
        assert isinstance(result, Values) and not result.tuples

    def test_union_drops_empty_branch(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").project_fields("deptno")
        live = b.build()
        empty = LogicalValues(live.row_type, [])
        from repro.core.rel import LogicalUnion
        union = LogicalUnion([live, empty], True)
        result = apply_rules(union, prune_empty_rules())
        assert not isinstance(result, Union)
        check_equivalent(union, result)

    def test_global_aggregate_over_empty_not_pruned(self, hr_catalog):
        """COUNT(*) over empty input still returns one row — the rule
        must not fire."""
        b = RelBuilder(hr_catalog)
        row_type = b.scan("hr", "emps").build().row_type
        empty = LogicalValues(row_type, [])
        b2 = RelBuilder(hr_catalog)
        b2.push(empty)
        agg = b2.aggregate(b2.group_key(), b2.count_star("c")).build()
        result = apply_rules(agg, prune_empty_rules())
        assert execute_to_list(result) == [(0,)]


class TestReduceExpressions:
    def test_filter_condition_simplified(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        base = b.scan("hr", "emps").build()
        cond = RexCall(rexmod.AND, [
            literal(True),
            RexCall(rexmod.GREATER_THAN, [
                RexInputRef(3, F.integer()),
                RexCall(rexmod.PLUS, [literal(4000), literal(4000)])])])
        rel = LogicalFilter(base, cond)
        result = apply_rules(rel, [FilterSimplifyRule()])
        assert isinstance(result, Filter)
        assert result.condition.digest == ">($3, 8000)"

    def test_always_true_filter_vanishes(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        base = b.scan("hr", "emps").build()
        rel = LogicalFilter(base, RexCall(rexmod.OR, [literal(True), literal(False)]))
        result = apply_rules(rel, [FilterSimplifyRule()])
        assert isinstance(result, TableScan)


class TestAggregateRules:
    def test_aggregate_project_merge(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        b.project_fields("deptno", "sal")
        b.aggregate(b.group_key("deptno"), b.sum(False, "s", b.field("sal")))
        rel = b.build()
        result = apply_rules(rel, [AggregateProjectMergeRule()])
        # the project has been folded into the aggregate's indexes
        found = result
        while not isinstance(found, Aggregate):
            found = found.input
        assert isinstance(found.input, TableScan)
        check_equivalent(rel, result)

    def test_aggregate_remove_on_unique_keys(self, hr_catalog):
        from repro.schema.core import Statistic
        hr = hr_catalog.resolve_schema(["hr"])
        hr.table("emps").statistic = Statistic(row_count=5, unique_keys=[[0]])
        hr_catalog._opt_tables.clear()
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").project_fields("empid")
        from repro.core.rel import LogicalAggregate
        rel = LogicalAggregate(b.build(), [0], [])
        result = apply_rules(rel, [AggregateRemoveRule()])
        assert not isinstance(result, Aggregate)
        check_equivalent(rel, result)
