"""Unit tests for the enumerable execution engine (Section 5)."""

import pytest

from repro.core import rex as rexmod
from repro.core.builder import RelBuilder
from repro.core.rel import JoinRelType, LogicalFilter, LogicalJoin, LogicalWindow
from repro.core.rex import (
    RexCall,
    RexInputRef,
    RexOver,
    RexWindowBound,
    literal,
)
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.runtime.operators import ExecutionContext, execute_to_list, sort_rows
from repro.core.traits import RelCollation, RelFieldCollation


class TestJoins:
    def _join(self, hr_catalog, join_type):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        return b.join_using(join_type, "deptno").build()

    def test_inner(self, hr_catalog):
        rows = execute_to_list(self._join(hr_catalog, JoinRelType.INNER))
        assert len(rows) == 5

    def test_left_keeps_unmatched(self, hr_catalog):
        # remove dept 30 rows? all emps match; invert: dept side as left
        b = RelBuilder(hr_catalog)
        b.scan("hr", "depts").scan("hr", "emps")
        rel = b.join_using(JoinRelType.LEFT, "deptno").build()
        rows = execute_to_list(rel)
        unmatched = [r for r in rows if r[2] is None]
        assert len(unmatched) == 1  # dept 40 "Empty"
        assert len(rows) == 6

    def test_right(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        rel = b.join_using(JoinRelType.RIGHT, "deptno").build()
        rows = execute_to_list(rel)
        assert len(rows) == 6
        assert any(r[0] is None for r in rows)

    def test_full(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "depts").scan("hr", "emps")
        rel = b.join_using(JoinRelType.FULL, "deptno").build()
        rows = execute_to_list(rel)
        assert len(rows) == 6

    def test_semi(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "depts").scan("hr", "emps")
        rel = b.join_using(JoinRelType.SEMI, "deptno").build()
        rows = execute_to_list(rel)
        assert sorted(r[0] for r in rows) == [10, 20, 30]
        assert all(len(r) == 2 for r in rows)  # left fields only

    def test_anti(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "depts").scan("hr", "emps")
        rel = b.join_using(JoinRelType.ANTI, "deptno").build()
        rows = execute_to_list(rel)
        assert [r[0] for r in rows] == [40]

    def test_null_keys_never_match(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.values(["k"], (1,), (None,))
        b.values(["k"], (1,), (None,))
        rel = b.join_using(JoinRelType.INNER, "k").build()
        assert execute_to_list(rel) == [(1, 1)]

    def test_theta_join_nested_loops(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.values(["a"], (1,), (5,))
        b.values(["b"], (3,), (7,))
        cond = RexCall(rexmod.LESS_THAN, [
            RexInputRef(0, F.integer()), RexInputRef(1, F.integer())])
        rel = b.join(JoinRelType.INNER, cond).build()
        assert sorted(execute_to_list(rel)) == [(1, 3), (1, 7), (5, 7)]

    def test_hash_join_with_residual(self):
        b = RelBuilder()
        b.values(["k", "v"], (1, 10), (1, 99))
        b.values(["k", "w"], (1, 50))
        equi = RexCall(rexmod.EQUALS, [
            RexInputRef(0, F.integer()), RexInputRef(2, F.integer())])
        residual = RexCall(rexmod.LESS_THAN, [
            RexInputRef(1, F.integer()), RexInputRef(3, F.integer())])
        rel = b.join(JoinRelType.INNER, RexCall(rexmod.AND, [equi, residual])).build()
        assert execute_to_list(rel) == [(1, 10, 1, 50)]


class TestSortSemantics:
    def test_nulls_last_ascending_default(self):
        rows = [(None,), (2,), (1,)]
        out = sort_rows(rows, RelCollation([RelFieldCollation(0)]))
        assert out == [(1,), (2,), (None,)]

    def test_nulls_first(self):
        rows = [(2,), (None,), (1,)]
        out = sort_rows(rows, RelCollation([RelFieldCollation(0, nulls_first=True)]))
        assert out == [(None,), (1,), (2,)]

    def test_descending(self):
        rows = [(1,), (3,), (2,)]
        out = sort_rows(rows, RelCollation([RelFieldCollation(0, descending=True)]))
        assert out == [(3,), (2,), (1,)]

    def test_multi_key_stability(self):
        rows = [(1, "b"), (2, "a"), (1, "a")]
        out = sort_rows(rows, RelCollation([RelFieldCollation(0),
                                            RelFieldCollation(1)]))
        assert out == [(1, "a"), (1, "b"), (2, "a")]


class TestAggregateExecution:
    def test_count_ignores_nulls_with_args(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        rel = b.aggregate(b.group_key(),
                          b.count(False, "c", b.field("commission"))).build()
        assert execute_to_list(rel) == [(4,)]  # one NULL commission

    def test_count_star_counts_all(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps")
        rel = b.aggregate(b.group_key(), b.count_star("c")).build()
        assert execute_to_list(rel) == [(5,)]

    def test_sum_of_all_nulls_is_null(self):
        b = RelBuilder()
        b.values(["g", "v"], (1, None), (1, None))
        rel = b.aggregate(b.group_key("g"), b.sum(False, "s", b.field("v"))).build()
        assert execute_to_list(rel) == [(1, None)]

    def test_grouped_empty_input_no_rows(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        base = b.scan("hr", "emps").filter(literal(False)).build()
        b2 = RelBuilder()
        b2.push(base)
        rel = b2.aggregate(b2.group_key(1), b2.count_star("c")).build()
        assert execute_to_list(rel) == []


class TestWindowExecution:
    def _rows_rel(self):
        b = RelBuilder()
        b.values(["g", "v"], ("a", 1), ("a", 2), ("b", 10), ("a", 3))
        return b.build()

    def test_running_sum_rows_frame(self):
        rel = self._rows_rel()
        over = RexOver(rexmod.SUM, [RexInputRef(1, F.integer())],
                       [RexInputRef(0, F.varchar())],
                       [(RexInputRef(1, F.integer()), False)],
                       RexWindowBound.UNBOUNDED_PRECEDING,
                       RexWindowBound.CURRENT_ROW, rows=True)
        w = LogicalWindow(rel, [over], ["running"])
        rows = execute_to_list(w)
        by_row = {(g, v): s for g, v, s in rows}
        assert by_row[("a", 1)] == 1
        assert by_row[("a", 2)] == 3
        assert by_row[("a", 3)] == 6
        assert by_row[("b", 10)] == 10

    def test_full_partition_frame(self):
        rel = self._rows_rel()
        over = RexOver(rexmod.COUNT, [], [RexInputRef(0, F.varchar())], [],
                       RexWindowBound.UNBOUNDED_PRECEDING,
                       RexWindowBound.UNBOUNDED_FOLLOWING, rows=True)
        w = LogicalWindow(rel, [over], ["n"])
        rows = execute_to_list(w)
        assert all(n == 3 for g, v, n in rows if g == "a")
        assert all(n == 1 for g, v, n in rows if g == "b")

    def test_range_frame_sliding_window(self):
        """The paper's RANGE INTERVAL '1' HOUR PRECEDING sliding window."""
        b = RelBuilder()
        hour = 3_600_000
        b.values(["ts", "v"],
                 (0, 1), (hour // 2, 2), (hour + 1, 4), (3 * hour, 8))
        rel = b.build()
        over = RexOver(rexmod.SUM, [RexInputRef(1, F.integer())], [],
                       [(RexInputRef(0, F.integer()), False)],
                       RexWindowBound("PRECEDING", literal(hour)),
                       RexWindowBound.CURRENT_ROW, rows=False)
        w = LogicalWindow(rel, [over], ["lastHour"])
        rows = dict((ts, s) for ts, v, s in execute_to_list(w))
        assert rows[0] == 1
        assert rows[hour // 2] == 3          # 1 + 2
        assert rows[hour + 1] == 6           # 2 + 4 (event at 0 aged out)
        assert rows[3 * hour] == 8           # alone

    def test_rows_offset_frame(self):
        b = RelBuilder()
        b.values(["v"], (1,), (2,), (3,), (4,))
        rel = b.build()
        over = RexOver(rexmod.SUM, [RexInputRef(0, F.integer())], [],
                       [(RexInputRef(0, F.integer()), False)],
                       RexWindowBound("PRECEDING", literal(1)),
                       RexWindowBound.CURRENT_ROW, rows=True)
        w = LogicalWindow(rel, [over], ["s"])
        assert [s for v, s in execute_to_list(w)] == [1, 3, 5, 7]


class TestSubqueryExecution:
    def test_scalar_subquery_multiple_rows_errors(self, hr_catalog):
        from repro.core.rex import RexSubQuery, SqlKind
        from repro.core.rex_eval import RexExecutionError
        b = RelBuilder(hr_catalog)
        sub = b.scan("hr", "emps").project_fields("sal").build()
        b2 = RelBuilder(hr_catalog)
        outer = b2.scan("hr", "depts").build()
        cond = RexCall(rexmod.GREATER_THAN, [
            RexSubQuery(SqlKind.OTHER, sub), literal(0)])
        rel = LogicalFilter(outer, cond)
        with pytest.raises(RexExecutionError):
            execute_to_list(rel)

    def test_execution_counters(self, hr_catalog):
        b = RelBuilder(hr_catalog)
        rel = b.scan("hr", "emps").build()
        ctx = ExecutionContext()
        execute_to_list(rel, ctx)
        assert ctx.rows_scanned == 5
