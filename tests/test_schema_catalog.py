"""Tests for schema/catalog resolution and statistics plumbing."""

import pytest

from repro import Catalog, MemoryTable, Schema, Statistic
from repro.core.traits import RelCollation


@pytest.fixture
def catalog():
    c = Catalog()
    a = Schema("a")
    b = Schema("b")
    nested = Schema("inner")
    c.add_schema(a)
    c.add_schema(b)
    a.add_subschema(nested)
    a.add_table(MemoryTable("t1", ["x"], [None or __import__(
        "repro.core.types", fromlist=["DEFAULT_TYPE_FACTORY"]
    ).DEFAULT_TYPE_FACTORY.integer()], [(1,)]))
    nested.add_table(MemoryTable("t2", ["y"], [__import__(
        "repro.core.types", fromlist=["DEFAULT_TYPE_FACTORY"]
    ).DEFAULT_TYPE_FACTORY.integer()], [(2,)]))
    return c


class TestResolution:
    def test_qualified_lookup(self, catalog):
        assert catalog.resolve_table(["a", "t1"]) is not None
        assert catalog.resolve_table(["a", "inner", "t2"]) is not None

    def test_case_insensitive(self, catalog):
        assert catalog.resolve_table(["A", "T1"]) is not None

    def test_unqualified_searches_one_level(self, catalog):
        assert catalog.resolve_table(["t1"]) is not None

    def test_missing_returns_none(self, catalog):
        assert catalog.resolve_table(["a", "nope"]) is None
        assert catalog.resolve_table(["zz", "t1"]) is None

    def test_default_path(self, catalog):
        catalog.default_path = ["a", "inner"]
        assert catalog.resolve_table(["t2"]) is not None

    def test_opt_table_cached_and_stable(self, catalog):
        t1 = catalog.resolve_table(["a", "t1"])
        t2 = catalog.resolve_table(["a", "t1"])
        assert t1 is t2  # identity matters for digest stability

    def test_find_table_returns_qualified_name(self, catalog):
        table, qualified = catalog.find_table(["a", "t1"])
        assert qualified == ("a", "t1")


class TestStatistics:
    def test_statistic_flows_to_opt_table(self):
        from repro.core.types import DEFAULT_TYPE_FACTORY as F
        c = Catalog()
        s = Schema("s")
        c.add_schema(s)
        s.add_table(MemoryTable(
            "t", ["k"], [F.integer()], [(1,), (2,)],
            statistic=Statistic(row_count=99, unique_keys=[[0]],
                                collation=RelCollation.of(0))))
        opt = c.resolve_table(["s", "t"])
        assert opt.row_count == 99
        assert frozenset([0]) in opt.unique_keys
        assert opt.collation.keys == (0,)

    def test_memory_table_statistics_track_inserts(self):
        from repro.core.types import DEFAULT_TYPE_FACTORY as F
        t = MemoryTable("t", ["x"], [F.integer()])
        assert t.statistic.row_count == 0
        t.insert((1,))
        t.insert_many([(2,), (3,)])
        assert t.statistic.row_count == 3
        assert list(t.scan()) == [(1,), (2,), (3,)]


class TestRuleAggregation:
    def test_rules_collected_recursively(self, catalog):
        sentinel = object()
        catalog.resolve_schema(["a"]).add_rule(sentinel)
        inner = catalog.resolve_schema(["a", "inner"])
        sentinel2 = object()
        inner.add_rule(sentinel2)
        rules = catalog.all_rules()
        assert sentinel in rules and sentinel2 in rules

    def test_materializations_and_lattices_collected(self, catalog):
        catalog.resolve_schema(["a"]).materializations.append("m")
        catalog.resolve_schema(["a", "inner"]).lattices.append("l")
        assert catalog.all_materializations() == ["m"]
        assert catalog.all_lattices() == ["l"]
