"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.sql import ast as sqlast
from repro.sql.lexer import SqlLexError, tokenize
from repro.sql.parser import SqlParseError, parse, parse_expression


class TestLexer:
    def test_keywords_upper(self):
        kinds = [(t.kind, t.value) for t in tokenize("select x FROM t")]
        assert kinds[0] == ("KEYWORD", "SELECT")
        assert kinds[1] == ("IDENT", "x")
        assert kinds[2] == ("KEYWORD", "FROM")

    def test_string_escaping(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_quoted_identifiers(self):
        assert tokenize('"My Col"')[0].kind == "QUOTED_IDENT"
        assert tokenize("`My Col`")[0].value == "My Col"

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 1e3 1.5E-2") if t.kind == "NUMBER"]
        assert values == ["1", "2.5", "1e3", "1.5E-2"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing\n/* block */ + 2")
        kinds = [t.kind for t in tokens]
        assert "EOF" in kinds
        assert len([t for t in tokens if t.kind == "NUMBER"]) == 2

    def test_operators_longest_match(self):
        ops = [t.value for t in tokenize("a <= b <> c || d") if t.kind == "OP"]
        assert ops == ["<=", "<>", "||"]

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError):
            tokenize("'oops")

    def test_bad_character(self):
        with pytest.raises(SqlLexError):
            tokenize("SELECT @x")


class TestExpressionParsing:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert str(expr) == "+(1, *(2, 3))"

    def test_precedence_logic(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert str(expr) == "OR(=(a, 1), AND(=(b, 2), =(c, 3)))"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("NOT a = 1 AND b = 2")
        assert str(expr).startswith("AND(NOT(")

    def test_unary_minus(self):
        assert str(parse_expression("-x + 1")) == "+(-/1(x), 1)"

    def test_between_and_in(self):
        assert str(parse_expression("x BETWEEN 1 AND 5")) == "BETWEEN(x, 1, 5)"
        assert str(parse_expression("x IN (1, 2)")) == "IN(x, 1, 2)"
        assert str(parse_expression("x NOT IN (1)")) == "NOT(IN(x, 1))"

    def test_is_null_forms(self):
        assert str(parse_expression("x IS NULL")) == "IS NULL(x)"
        assert str(parse_expression("x IS NOT NULL")) == "IS NOT NULL(x)"

    def test_like(self):
        assert str(parse_expression("name LIKE 'A%'")) == "LIKE(name, 'A%')"
        assert str(parse_expression("name NOT LIKE 'A%'")) == "NOT(LIKE(name, 'A%'))"

    def test_case_forms(self):
        searched = parse_expression("CASE WHEN a > 1 THEN 'x' ELSE 'y' END")
        assert isinstance(searched, sqlast.SqlCase)
        valued = parse_expression("CASE a WHEN 1 THEN 'x' END")
        assert valued.value is not None

    def test_cast(self):
        c = parse_expression("CAST(x AS VARCHAR(20))")
        assert isinstance(c, sqlast.SqlCast)
        assert c.type_name == "VARCHAR"
        assert c.precision == 20

    def test_item_access_chain(self):
        expr = parse_expression("_MAP['loc'][0]")
        assert isinstance(expr, sqlast.SqlItemAccess)
        assert isinstance(expr.collection, sqlast.SqlItemAccess)

    def test_interval(self):
        expr = parse_expression("INTERVAL '1' HOUR")
        assert isinstance(expr, sqlast.SqlIntervalLiteral)
        assert expr.millis() == 3_600_000

    def test_interval_minute(self):
        assert parse_expression("INTERVAL '90' SECOND").millis() == 90_000

    def test_dynamic_params_numbered(self):
        q = parse("SELECT * FROM t WHERE a = ? AND b = ?")
        where = q.where
        assert str(where) == "AND(=(a, ?), =(b, ?))"

    def test_extract_substring(self):
        assert str(parse_expression("EXTRACT(YEAR FROM d)")) == "EXTRACT('YEAR', d)"
        assert str(parse_expression("SUBSTRING(s FROM 2 FOR 3)")) == "SUBSTRING(s, 2, 3)"

    def test_concat(self):
        assert str(parse_expression("a || b")) == "||(a, b)"


class TestQueryParsing:
    def test_select_structure(self):
        q = parse("SELECT DISTINCT a, b AS bee FROM t WHERE a > 1 "
                  "GROUP BY a, b HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 3 OFFSET 1")
        assert isinstance(q, sqlast.SqlSelect)
        assert q.distinct
        assert q.select_list[1].alias == "bee"
        assert len(q.group_by) == 2
        assert q.having is not None
        assert q.order_by[0].descending
        assert q.fetch == 3 and q.offset == 1

    def test_fetch_first_syntax(self):
        q = parse("SELECT a FROM t FETCH FIRST 5 ROWS ONLY")
        assert q.fetch == 5

    def test_stream_keyword(self):
        q = parse("SELECT STREAM a FROM orders")
        assert q.stream

    def test_join_kinds(self):
        q = parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x "
                  "CROSS JOIN c")
        join = q.from_clause
        assert isinstance(join, sqlast.SqlJoinClause)
        assert join.kind == "CROSS"
        assert join.left.kind == "LEFT"

    def test_using(self):
        q = parse("SELECT * FROM a JOIN b USING (x, y)")
        assert q.from_clause.using == ["x", "y"]

    def test_comma_join_is_cross(self):
        q = parse("SELECT * FROM a, b")
        assert q.from_clause.kind == "CROSS"

    def test_derived_table(self):
        q = parse("SELECT * FROM (SELECT a FROM t) AS sub")
        assert isinstance(q.from_clause, sqlast.SqlDerivedTable)
        assert q.from_clause.alias == "sub"

    def test_set_ops_chain(self):
        q = parse("SELECT a FROM t UNION ALL SELECT a FROM u EXCEPT SELECT a FROM v")
        assert isinstance(q, sqlast.SqlSetOp)
        assert q.kind == "EXCEPT"
        assert isinstance(q.left, sqlast.SqlSetOp)
        assert q.left.all

    def test_order_by_on_union_wraps(self):
        q = parse("SELECT a FROM t UNION SELECT a FROM u ORDER BY a")
        assert isinstance(q, sqlast.SqlSelect)  # wrapped in outer select
        assert q.order_by

    def test_values(self):
        q = parse("VALUES (1, 'a'), (2, 'b')")
        assert isinstance(q, sqlast.SqlValues)
        assert len(q.rows) == 2

    def test_with_cte(self):
        q = parse("WITH x AS (SELECT 1 AS a), y AS (SELECT 2 AS b) SELECT * FROM x")
        assert isinstance(q, sqlast.SqlWith)
        assert [name for name, _ in q.ctes] == ["x", "y"]

    def test_exists_subquery(self):
        q = parse("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert "EXISTS" in str(q.where)

    def test_window_spec_with_frame(self):
        q = parse("SELECT SUM(x) OVER (PARTITION BY g ORDER BY ts "
                  "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) FROM t")
        call = q.select_list[0].expr
        assert call.over is not None
        assert call.over.is_rows
        assert call.over.lower[0] == "PRECEDING"

    def test_window_spec_range_preceding(self):
        q = parse("SELECT SUM(units) OVER (ORDER BY rowtime "
                  "RANGE INTERVAL '1' HOUR PRECEDING) FROM orders")
        spec = q.select_list[0].expr.over
        assert not spec.is_rows
        assert spec.lower[0] == "PRECEDING"

    def test_count_distinct_and_star(self):
        q = parse("SELECT COUNT(*), COUNT(DISTINCT a) FROM t")
        star = q.select_list[0].expr
        distinct = q.select_list[1].expr
        assert star.star
        assert distinct.distinct

    def test_error_messages(self):
        with pytest.raises(SqlParseError):
            parse("SELECT FROM t")
        with pytest.raises(SqlParseError):
            parse("SELECT a FROM t WHERE")
        with pytest.raises(SqlParseError):
            parse("SELECT a FROM t GROUP a")
        with pytest.raises(SqlParseError):
            parse_expression("1 +")

    def test_trailing_garbage(self):
        with pytest.raises(SqlParseError):
            parse("SELECT 1 zig zag bonk")
