"""Unit tests for validation + SQL-to-rel conversion."""

import pytest

from repro.core.rel import (
    Aggregate,
    Delta,
    Filter,
    Join,
    JoinRelType,
    Project,
    Sort,
    TableScan,
    Union,
    Values,
    Window,
)
from repro.sql.to_rel import SqlToRelConverter, ValidationError


@pytest.fixture
def convert(hr_catalog):
    converter = SqlToRelConverter(hr_catalog)
    return converter.convert_sql


class TestNameResolution:
    def test_qualified_and_bare_columns(self, convert):
        rel = convert("SELECT emps.name, sal FROM hr.emps")
        assert isinstance(rel, Project)
        assert rel.row_type.field_names == ("name", "sal")

    def test_alias_resolution(self, convert):
        rel = convert("SELECT e.name FROM hr.emps e")
        assert rel.row_type.field_names == ("name",)

    def test_unknown_column(self, convert):
        with pytest.raises(ValidationError, match="column not found"):
            convert("SELECT wages FROM hr.emps")

    def test_unknown_table(self, convert):
        with pytest.raises(ValidationError, match="table not found"):
            convert("SELECT * FROM hr.missing")

    def test_ambiguous_column(self, convert):
        with pytest.raises(ValidationError, match="ambiguous"):
            convert("SELECT deptno FROM hr.emps, hr.depts")

    def test_unknown_alias_qualifier(self, convert):
        with pytest.raises(ValidationError):
            convert("SELECT z.name FROM hr.emps e")

    def test_star_expansion(self, convert):
        rel = convert("SELECT * FROM hr.emps")
        assert rel.row_type.field_count == 5

    def test_qualified_star(self, convert):
        rel = convert("SELECT d.* FROM hr.emps e, hr.depts d")
        assert rel.row_type.field_names == ("deptno", "dname")

    def test_default_schema_path(self, hr_catalog):
        hr_catalog.default_path = ["hr"]
        rel = SqlToRelConverter(hr_catalog).convert_sql("SELECT name FROM emps")
        assert rel.row_type.field_names == ("name",)


class TestShapes:
    def test_filter_where(self, convert):
        rel = convert("SELECT name FROM hr.emps WHERE sal > 100")
        assert isinstance(rel.input, Filter)

    def test_where_must_be_boolean(self, convert):
        with pytest.raises(ValidationError, match="boolean"):
            convert("SELECT name FROM hr.emps WHERE sal + 1")

    def test_join_on(self, convert):
        rel = convert("SELECT e.name FROM hr.emps e JOIN hr.depts d "
                      "ON e.deptno = d.deptno")
        join = rel.input
        assert isinstance(join, Join)
        assert join.join_type is JoinRelType.INNER

    def test_join_using(self, convert):
        rel = convert("SELECT name FROM hr.emps JOIN hr.depts USING (deptno)")
        assert isinstance(rel.input, Join)

    def test_using_missing_column(self, convert):
        with pytest.raises(ValidationError):
            convert("SELECT 1 FROM hr.emps JOIN hr.depts USING (nope)")

    def test_outer_join_types(self, convert):
        for kw, jt in [("LEFT", JoinRelType.LEFT), ("RIGHT", JoinRelType.RIGHT),
                       ("FULL", JoinRelType.FULL)]:
            rel = convert(f"SELECT name FROM hr.emps {kw} JOIN hr.depts USING (deptno)")
            assert rel.input.join_type is jt

    def test_select_without_from(self, convert):
        rel = convert("SELECT 1 + 1")
        assert isinstance(rel, Project)

    def test_values(self, convert):
        rel = convert("VALUES (1, 'a')")
        assert isinstance(rel, Values)

    def test_values_non_constant_rejected(self, convert):
        with pytest.raises(ValidationError):
            convert("VALUES (x)")

    def test_union_column_mismatch(self, convert):
        with pytest.raises(ValidationError, match="column counts"):
            convert("SELECT deptno FROM hr.emps UNION SELECT deptno, dname FROM hr.depts")

    def test_order_limit(self, convert):
        rel = convert("SELECT name, sal FROM hr.emps ORDER BY sal DESC LIMIT 2")
        assert isinstance(rel, Sort)
        assert rel.fetch == 2
        assert rel.collation.field_collations[0].descending

    def test_order_by_hidden_column(self, convert):
        """ORDER BY a column not in the select list: project-sort-trim."""
        from repro.runtime.operators import execute_to_list
        rel = convert("SELECT name FROM hr.emps ORDER BY sal DESC LIMIT 2")
        assert rel.row_type.field_names == ("name",)
        assert execute_to_list(rel) == [("Theodore",), ("Bill",)]


class TestAggregation:
    def test_group_by(self, convert):
        rel = convert("SELECT deptno, COUNT(*) FROM hr.emps GROUP BY deptno")
        agg = rel.input
        assert isinstance(agg, Aggregate)
        assert agg.group_set == (1,)

    def test_ungrouped_column_rejected(self, convert):
        with pytest.raises(ValidationError, match="grouped"):
            convert("SELECT name, COUNT(*) FROM hr.emps GROUP BY deptno")

    def test_having_without_group_rejected(self, convert):
        with pytest.raises(ValidationError):
            convert("SELECT name FROM hr.emps HAVING 1 > 0")

    def test_having_references_aggregate(self, convert):
        rel = convert("SELECT deptno FROM hr.emps GROUP BY deptno "
                      "HAVING SUM(sal) > 10")
        assert isinstance(rel, Project)
        assert isinstance(rel.input, Filter)

    def test_duplicate_aggregates_shared(self, convert):
        rel = convert("SELECT SUM(sal), SUM(sal) + 1 FROM hr.emps")
        agg = rel.input
        assert isinstance(agg, Aggregate)
        assert len(agg.agg_calls) == 1  # deduplicated

    def test_group_expression(self, convert):
        rel = convert("SELECT deptno + 1 FROM hr.emps GROUP BY deptno + 1")
        assert isinstance(rel.input, Aggregate)

    def test_order_by_aggregate_alias(self, convert):
        rel = convert("SELECT deptno, COUNT(*) AS c FROM hr.emps "
                      "GROUP BY deptno ORDER BY c DESC")
        assert isinstance(rel, Sort)

    def test_order_by_aggregate_expression(self, convert):
        rel = convert("SELECT deptno, COUNT(*) FROM hr.emps "
                      "GROUP BY deptno ORDER BY COUNT(*) DESC")
        assert isinstance(rel, Sort)
        assert rel.collation.keys == (1,)

    def test_order_by_ordinal(self, convert):
        rel = convert("SELECT name, sal FROM hr.emps ORDER BY 2")
        assert rel.collation.keys == (1,)

    def test_order_by_ordinal_out_of_range(self, convert):
        with pytest.raises(ValidationError, match="out of range"):
            convert("SELECT name FROM hr.emps ORDER BY 9")

    def test_distinct_becomes_aggregate(self, convert):
        rel = convert("SELECT DISTINCT deptno FROM hr.emps")
        assert isinstance(rel, Aggregate)
        assert not rel.agg_calls


class TestSubqueries:
    def test_in_subquery(self, convert):
        rel = convert("SELECT name FROM hr.emps WHERE deptno IN "
                      "(SELECT deptno FROM hr.depts)")
        assert isinstance(rel.input, Filter)
        assert "IN" in rel.input.condition.digest

    def test_exists_correlated(self, convert):
        rel = convert("SELECT name FROM hr.emps e WHERE EXISTS "
                      "(SELECT 1 FROM hr.depts d WHERE d.deptno = e.deptno)")
        assert "$cor0" in rel.input.condition.digest

    def test_scalar_subquery_in_select(self, convert):
        rel = convert("SELECT (SELECT MAX(sal) FROM hr.emps) FROM hr.depts")
        assert isinstance(rel, Project)

    def test_derived_table_scoping(self, convert):
        rel = convert("SELECT top.name FROM (SELECT name FROM hr.emps) AS top")
        assert rel.row_type.field_names == ("name",)
        with pytest.raises(ValidationError):
            convert("SELECT sal FROM (SELECT name FROM hr.emps) AS top")


class TestWindows:
    def test_over_creates_window_operator(self, convert):
        rel = convert("SELECT name, SUM(sal) OVER (PARTITION BY deptno) FROM hr.emps")
        assert isinstance(rel, Project)
        assert isinstance(rel.input, Window)

    def test_window_plus_aggregate_rejected(self, convert):
        with pytest.raises(ValidationError):
            convert("SELECT deptno, SUM(COUNT(*)) OVER () FROM hr.emps GROUP BY deptno")


class TestStreaming:
    @pytest.fixture
    def stream_catalog(self, hr_catalog):
        from repro.core.types import DEFAULT_TYPE_FACTORY as F
        from repro.schema.core import Schema
        from repro.stream import StreamTable
        s = Schema("st")
        hr_catalog.add_schema(s)
        s.add_table(StreamTable("orders", ["rowtime", "productId", "units"],
                                [F.timestamp(False), F.integer(False),
                                 F.integer(False)]))
        return hr_catalog

    def test_stream_wraps_delta(self, stream_catalog):
        rel = SqlToRelConverter(stream_catalog).convert_sql(
            "SELECT STREAM rowtime, units FROM st.orders")
        assert isinstance(rel, Delta)

    def test_stream_group_by_requires_monotonic(self, stream_catalog):
        convert = SqlToRelConverter(stream_catalog).convert_sql
        with pytest.raises(ValidationError, match="monotonic"):
            convert("SELECT STREAM productId, COUNT(*) FROM st.orders "
                    "GROUP BY productId")

    def test_stream_tumble_group_accepted(self, stream_catalog):
        convert = SqlToRelConverter(stream_catalog).convert_sql
        rel = convert(
            "SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS t, "
            "COUNT(*) AS c FROM st.orders "
            "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")
        assert isinstance(rel, Delta)

    def test_tumble_end_without_matching_group(self, stream_catalog):
        convert = SqlToRelConverter(stream_catalog).convert_sql
        with pytest.raises(ValidationError, match="TUMBLE"):
            convert("SELECT STREAM TUMBLE_END(rowtime, INTERVAL '2' HOUR) "
                    "FROM st.orders GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")

    def test_rowtime_group_is_monotonic(self, stream_catalog):
        convert = SqlToRelConverter(stream_catalog).convert_sql
        rel = convert("SELECT STREAM rowtime, COUNT(*) FROM st.orders "
                      "GROUP BY rowtime")
        assert isinstance(rel, Delta)


class TestViews:
    def test_view_expansion(self, hr_catalog):
        from repro.schema.core import ViewTable
        hr = hr_catalog.resolve_schema(["hr"])
        hr.add_table(ViewTable(
            "rich", "SELECT name, sal FROM hr.emps WHERE sal > 9000"))
        rel = SqlToRelConverter(hr_catalog).convert_sql(
            "SELECT name FROM hr.rich")
        from repro.runtime.operators import execute_to_list
        assert sorted(execute_to_list(rel)) == [("Bill",), ("Theodore",)]
