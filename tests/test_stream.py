"""Tests for the streaming extension (Section 7.2)."""

import pytest

from repro import Catalog, Schema
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import planner_for
from repro.stream import (
    StreamExecutor,
    StreamTable,
    assign_session,
    hop,
    session_windows,
    tumble,
    tumble_end,
)

HOUR = 3_600_000
MIN = 60_000


class TestWindowFunctions:
    def test_tumble(self):
        assert tumble(30 * MIN, HOUR) == (0, HOUR)
        assert tumble(90 * MIN, HOUR) == (HOUR, 2 * HOUR)
        assert tumble_end(30 * MIN, HOUR) == HOUR

    def test_tumble_bad_size(self):
        with pytest.raises(ValueError):
            tumble(0, 0)

    def test_hop_windows_overlap(self):
        # 1h windows sliding every 30min: each event in 2 windows
        windows = hop(45 * MIN, 30 * MIN, HOUR)
        assert windows == [(0, HOUR), (30 * MIN, 90 * MIN)]

    def test_hop_equals_tumble_when_slide_is_size(self):
        assert hop(90 * MIN, HOUR, HOUR) == [tumble(90 * MIN, HOUR)]

    def test_hop_validation(self):
        with pytest.raises(ValueError):
            hop(0, HOUR, 30 * MIN)  # size < slide

    def test_session_windows(self):
        gap = 10 * MIN
        stamps = [0, MIN, 2 * MIN, 40 * MIN, 41 * MIN]
        sessions = session_windows(stamps, gap)
        assert len(sessions) == 2
        assert sessions[0] == (0, 2 * MIN + gap)
        assert sessions[1] == (40 * MIN, 41 * MIN + gap)

    def test_assign_session(self):
        sessions = [(0, 100), (200, 300)]
        assert assign_session(50, sessions) == (0, 100)
        with pytest.raises(ValueError):
            assign_session(150, sessions)

    def test_empty_sessions(self):
        assert session_windows([], 10) == []


@pytest.fixture
def stream_env():
    catalog = Catalog()
    s = Schema("st")
    catalog.add_schema(s)
    orders = StreamTable("orders", ["rowtime", "productId", "units"],
                         [F.timestamp(False), F.integer(False), F.integer(False)])
    s.add_table(orders)
    return catalog, orders


class TestStreamTable:
    def test_events_kept_in_rowtime_order(self, stream_env):
        _, orders = stream_env
        orders.push((3000, 1, 1))
        orders.push((1000, 2, 2))
        orders.push((2000, 3, 3))
        assert [r[0] for r in orders.scan()] == [1000, 2000, 3000]

    def test_visibility_cutoff(self, stream_env):
        _, orders = stream_env
        orders.push_many([(1000, 1, 1), (2000, 2, 2), (3000, 3, 3)])
        orders.visible_upto = 2000
        assert len(list(orders.scan())) == 2
        orders.visible_upto = None
        assert len(list(orders.scan())) == 3

    def test_requires_rowtime_column(self):
        with pytest.raises(ValueError):
            StreamTable("bad", ["a"], [F.integer()])

    def test_non_stream_query_reads_existing(self, stream_env):
        """Without STREAM the query processes already-received rows."""
        catalog, orders = stream_env
        orders.push_many([(1000, 1, 30), (2000, 2, 10)])
        p = planner_for(catalog)
        res = p.execute("SELECT productId FROM st.orders WHERE units > 20")
        assert res.rows == [(1,)]


class TestStreamExecutor:
    def test_stateless_filter_emits_incrementally(self, stream_env):
        catalog, orders = stream_env
        p = planner_for(catalog)
        ex = StreamExecutor(
            p, "SELECT STREAM rowtime, units FROM st.orders WHERE units > 25")
        orders.push((1000, 1, 30))
        orders.push((2000, 2, 10))
        assert ex.advance(5000) == [(1000, 30)]
        orders.push((6000, 3, 99))
        assert ex.advance(7000) == [(6000, 99)]
        assert ex.rows_emitted == 2

    def test_non_stream_sql_rejected(self, stream_env):
        catalog, _ = stream_env
        p = planner_for(catalog)
        with pytest.raises(ValueError, match="STREAM"):
            StreamExecutor(p, "SELECT rowtime FROM st.orders")

    def test_tumbling_aggregate_waits_for_window_close(self, stream_env):
        catalog, orders = stream_env
        p = planner_for(catalog)
        ex = StreamExecutor(p, f"""
            SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS wend,
                   productId, COUNT(*) AS c, SUM(units) AS total
            FROM st.orders
            GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId""")
        orders.push((10_000, 1, 5))
        orders.push((20_000, 1, 7))
        orders.push((HOUR + 5_000, 1, 3))
        assert ex.advance(HOUR // 2) == []          # window still open
        assert ex.advance(HOUR) == [(HOUR, 1, 2, 12)]
        assert ex.advance(2 * HOUR) == [(2 * HOUR, 1, 1, 3)]

    def test_tumble_windows_partition_by_key(self, stream_env):
        catalog, orders = stream_env
        p = planner_for(catalog)
        ex = StreamExecutor(p, """
            SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS wend,
                   productId, SUM(units) AS total
            FROM st.orders GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId""")
        orders.push((1_000, 1, 5))
        orders.push((2_000, 2, 9))
        out = sorted(ex.advance(HOUR))
        assert out == [(HOUR, 1, 5), (HOUR, 2, 9)]

    def test_stream_join_with_time_window(self, stream_env):
        catalog, orders = stream_env
        schema = catalog.resolve_schema(["st"])
        shipments = StreamTable("shipments", ["rowtime", "orderId"],
                                [F.timestamp(False), F.integer(False)])
        schema.add_table(shipments)
        orders3 = StreamTable("orders3", ["rowtime", "orderId"],
                              [F.timestamp(False), F.integer(False)])
        schema.add_table(orders3)
        p = planner_for(catalog)
        ex = StreamExecutor(p, """
            SELECT STREAM o.rowtime, o.orderId, s.rowtime AS shipTime
            FROM st.orders3 o JOIN st.shipments s ON o.orderId = s.orderId
            AND s.rowtime BETWEEN o.rowtime AND o.rowtime + INTERVAL '1' HOUR""")
        orders3.push((1_000, 100))
        shipments.push((2_000, 100))          # inside the window
        shipments.push((3 * HOUR, 100))       # outside the window
        rows = ex.advance(4 * HOUR)
        assert rows == [(1_000, 100, 2_000)]

    def test_emitted_rows_are_final(self, stream_env):
        """Advancing twice over the same events emits nothing new."""
        catalog, orders = stream_env
        p = planner_for(catalog)
        ex = StreamExecutor(
            p, "SELECT STREAM rowtime FROM st.orders WHERE units > 0")
        orders.push((1_000, 1, 1))
        assert ex.advance(5_000) == [(1_000,)]
        assert ex.advance(6_000) == []

    def test_sliding_window_over_stream(self, stream_env):
        """The paper's OVER (... RANGE INTERVAL '1' HOUR PRECEDING)."""
        catalog, orders = stream_env
        p = planner_for(catalog)
        ex = StreamExecutor(p, """
            SELECT STREAM rowtime, productId, units,
                   SUM(units) OVER (PARTITION BY productId ORDER BY rowtime
                       RANGE INTERVAL '1' HOUR PRECEDING) AS unitsLastHour
            FROM st.orders""")
        orders.push((0, 1, 10))
        orders.push((30 * MIN, 1, 5))
        orders.push((2 * HOUR, 1, 2))
        rows = ex.advance(3 * HOUR)
        by_time = {r[0]: r[3] for r in rows}
        assert by_time[0] == 10
        assert by_time[30 * MIN] == 15
        assert by_time[2 * HOUR] == 2
