"""Unit tests for the trait system (Section 4)."""

from repro.core.traits import (
    Convention,
    RelCollation,
    RelDistribution,
    RelFieldCollation,
    RelTraitSet,
)


class TestConvention:
    def test_interned(self):
        assert Convention("foo") is Convention("foo")
        assert Convention("foo") is not Convention("bar")

    def test_builtins(self):
        assert Convention.NONE.name == "logical"
        assert Convention.ENUMERABLE.name == "enumerable"

    def test_satisfies_is_identity(self):
        assert Convention.ENUMERABLE.satisfies(Convention.ENUMERABLE)
        assert not Convention.ENUMERABLE.satisfies(Convention.NONE)


class TestCollation:
    def test_prefix_satisfaction(self):
        ab = RelCollation.of(0, 1)
        a = RelCollation.of(0)
        assert ab.satisfies(a)       # sorted by (a,b) delivers (a)
        assert not a.satisfies(ab)   # but not vice versa
        assert ab.satisfies(ab)

    def test_empty_satisfied_by_all(self):
        assert RelCollation.of(0).satisfies(RelCollation.EMPTY)
        assert RelCollation.EMPTY.satisfies(RelCollation.EMPTY)

    def test_direction_matters(self):
        asc = RelCollation([RelFieldCollation(0, descending=False)])
        desc = RelCollation([RelFieldCollation(0, descending=True)])
        assert not asc.satisfies(desc)

    def test_keys(self):
        assert RelCollation.of(2, 0).keys == (2, 0)

    def test_equality_hash(self):
        assert RelCollation.of(1) == RelCollation.of(1)
        assert hash(RelCollation.of(1)) == hash(RelCollation.of(1))


class TestDistribution:
    def test_any_satisfied_by_everything(self):
        assert RelDistribution.SINGLETON.satisfies(RelDistribution.ANY)
        assert RelDistribution.BROADCAST.satisfies(RelDistribution.ANY)
        assert RelDistribution.RANDOM.satisfies(RelDistribution.ANY)
        assert RelDistribution.ANY.satisfies(RelDistribution.ANY)
        assert RelDistribution.hash([0]).satisfies(RelDistribution.ANY)

    def test_any_satisfies_only_any(self):
        assert not RelDistribution.ANY.satisfies(RelDistribution.SINGLETON)
        assert not RelDistribution.ANY.satisfies(RelDistribution.RANDOM)
        assert not RelDistribution.ANY.satisfies(RelDistribution.hash([0]))

    def test_hash_keys(self):
        h1 = RelDistribution.hash([0, 1])
        h2 = RelDistribution.hash([0, 1])
        assert h1 == h2
        assert h1.satisfies(h2)
        assert not h1.satisfies(RelDistribution.hash([1]))
        assert not RelDistribution.hash([1]).satisfies(h1)

    def test_hash_keys_canonicalised(self):
        """Hash partitioning is insensitive to key listing order."""
        assert RelDistribution.hash([2, 1]) == RelDistribution.hash([1, 2])
        assert RelDistribution.hash([2, 1]).satisfies(RelDistribution.hash([1, 2]))
        assert RelDistribution.hash([1, 2]).satisfies(RelDistribution.hash([2, 1]))
        assert hash(RelDistribution.hash([2, 1])) == hash(RelDistribution.hash([1, 2]))
        assert RelDistribution.hash([2, 1]).keys == (1, 2)

    def test_hash_requires_keys(self):
        import pytest
        with pytest.raises(ValueError):
            RelDistribution("HASH", [])

    def test_broadcast_satisfies_partitionings(self):
        """Every worker holds all rows, so any co-location requirement
        holds trivially."""
        b = RelDistribution.BROADCAST
        assert b.satisfies(RelDistribution.hash([0]))
        assert b.satisfies(RelDistribution.hash([3, 1]))
        assert b.satisfies(RelDistribution.RANDOM)
        assert b.satisfies(b)
        # ... but not SINGLETON: gathering the copies would duplicate rows.
        assert not b.satisfies(RelDistribution.SINGLETON)

    def test_hash_satisfies_random(self):
        """Hash-partitioned rows are each on exactly one worker."""
        assert RelDistribution.hash([0]).satisfies(RelDistribution.RANDOM)
        assert not RelDistribution.RANDOM.satisfies(RelDistribution.hash([0]))

    def test_singleton_is_not_a_spread(self):
        """SINGLETON does not satisfy RANDOM: requiring RANDOM is a
        request for actual parallelism."""
        s = RelDistribution.SINGLETON
        assert s.satisfies(s)
        assert not s.satisfies(RelDistribution.RANDOM)
        assert not s.satisfies(RelDistribution.hash([0]))
        assert not s.satisfies(RelDistribution.BROADCAST)
        assert not RelDistribution.RANDOM.satisfies(s)

    def test_range_rejected(self):
        import pytest
        with pytest.raises(ValueError, match="RANGE distribution is not"):
            RelDistribution("RANGE", [0])
        with pytest.raises(ValueError, match="RANGE"):
            RelDistribution("RANGE")

    def test_keys_only_valid_on_hash(self):
        import pytest
        with pytest.raises(ValueError):
            RelDistribution("RANDOM", [0])

    def test_bad_type_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            RelDistribution("SPIRAL")


class TestTraitSet:
    def test_replace(self):
        ts = RelTraitSet()
        ts2 = ts.replace(Convention.ENUMERABLE)
        assert ts2.convention is Convention.ENUMERABLE
        assert ts.convention is Convention.NONE  # immutable
        ts3 = ts2.replace(RelCollation.of(0))
        assert ts3.collation.keys == (0,)
        assert ts3.convention is Convention.ENUMERABLE

    def test_satisfies_componentwise(self):
        sorted_enum = RelTraitSet(Convention.ENUMERABLE, RelCollation.of(0, 1))
        required = RelTraitSet(Convention.ENUMERABLE, RelCollation.of(0))
        assert sorted_enum.satisfies(required)
        assert not required.satisfies(sorted_enum)

    def test_repr_compact(self):
        assert repr(RelTraitSet()) == "logical"
        assert "enumerable" in repr(RelTraitSet(Convention.ENUMERABLE))
