"""Unit tests for the trait system (Section 4)."""

from repro.core.traits import (
    Convention,
    RelCollation,
    RelDistribution,
    RelFieldCollation,
    RelTraitSet,
)


class TestConvention:
    def test_interned(self):
        assert Convention("foo") is Convention("foo")
        assert Convention("foo") is not Convention("bar")

    def test_builtins(self):
        assert Convention.NONE.name == "logical"
        assert Convention.ENUMERABLE.name == "enumerable"

    def test_satisfies_is_identity(self):
        assert Convention.ENUMERABLE.satisfies(Convention.ENUMERABLE)
        assert not Convention.ENUMERABLE.satisfies(Convention.NONE)


class TestCollation:
    def test_prefix_satisfaction(self):
        ab = RelCollation.of(0, 1)
        a = RelCollation.of(0)
        assert ab.satisfies(a)       # sorted by (a,b) delivers (a)
        assert not a.satisfies(ab)   # but not vice versa
        assert ab.satisfies(ab)

    def test_empty_satisfied_by_all(self):
        assert RelCollation.of(0).satisfies(RelCollation.EMPTY)
        assert RelCollation.EMPTY.satisfies(RelCollation.EMPTY)

    def test_direction_matters(self):
        asc = RelCollation([RelFieldCollation(0, descending=False)])
        desc = RelCollation([RelFieldCollation(0, descending=True)])
        assert not asc.satisfies(desc)

    def test_keys(self):
        assert RelCollation.of(2, 0).keys == (2, 0)

    def test_equality_hash(self):
        assert RelCollation.of(1) == RelCollation.of(1)
        assert hash(RelCollation.of(1)) == hash(RelCollation.of(1))


class TestDistribution:
    def test_any_satisfied_by_everything(self):
        assert RelDistribution.SINGLETON.satisfies(RelDistribution.ANY)
        assert RelDistribution.hash([0]).satisfies(RelDistribution.ANY)

    def test_hash_keys(self):
        h1 = RelDistribution.hash([0, 1])
        h2 = RelDistribution.hash([0, 1])
        assert h1 == h2
        assert h1.satisfies(h2)
        assert not h1.satisfies(RelDistribution.hash([1]))

    def test_bad_type_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            RelDistribution("SPIRAL")


class TestTraitSet:
    def test_replace(self):
        ts = RelTraitSet()
        ts2 = ts.replace(Convention.ENUMERABLE)
        assert ts2.convention is Convention.ENUMERABLE
        assert ts.convention is Convention.NONE  # immutable
        ts3 = ts2.replace(RelCollation.of(0))
        assert ts3.collation.keys == (0,)
        assert ts3.convention is Convention.ENUMERABLE

    def test_satisfies_componentwise(self):
        sorted_enum = RelTraitSet(Convention.ENUMERABLE, RelCollation.of(0, 1))
        required = RelTraitSet(Convention.ENUMERABLE, RelCollation.of(0))
        assert sorted_enum.satisfies(required)
        assert not required.satisfies(sorted_enum)

    def test_repr_compact(self):
        assert repr(RelTraitSet()) == "logical"
        assert "enumerable" in repr(RelTraitSet(Convention.ENUMERABLE))
