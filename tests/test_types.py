"""Unit tests for the relational type system."""

import pytest

from repro.core.types import (
    DEFAULT_TYPE_FACTORY as F,
    RelDataType,
    RelDataTypeFactory,
    SqlTypeName,
    TypeCoercionError,
)


class TestBasicTypes:
    def test_simple_types_interned(self):
        assert F.integer() is F.integer()
        assert F.integer(False) is not F.integer(True)

    def test_classification(self):
        assert F.integer().is_numeric
        assert F.double().is_numeric
        assert F.varchar().is_character
        assert F.timestamp().is_temporal
        assert F.boolean().is_boolean
        assert not F.varchar().is_numeric

    def test_nullability(self):
        t = F.integer(True)
        assert t.nullable
        t2 = t.with_nullable(False)
        assert not t2.nullable
        assert t2.type_name is SqlTypeName.INTEGER
        assert t.with_nullable(True) is t

    def test_str_rendering(self):
        assert str(F.integer(False)) == "INTEGER NOT NULL"
        assert str(F.varchar(20)) == "VARCHAR(20)"
        assert str(F.decimal(10, 2)) == "DECIMAL(10, 2)"
        assert "INTERVAL HOUR" in str(F.interval("HOUR"))


class TestComplexTypes:
    def test_array(self):
        t = F.array(F.integer())
        assert t.type_name is SqlTypeName.ARRAY
        assert t.component is F.integer()
        assert t.is_complex

    def test_map(self):
        t = F.map(F.varchar(), F.any())
        assert t.key_type.is_character
        assert t.value_type.type_name is SqlTypeName.ANY

    def test_multiset(self):
        t = F.multiset(F.varchar())
        assert t.is_complex
        assert "MULTISET" in str(t)

    def test_nested_map_of_arrays(self):
        t = F.map(F.varchar(), F.array(F.double()))
        assert t.value_type.component is F.double()


class TestStructTypes:
    def test_struct_fields(self):
        t = F.struct(["a", "b"], [F.integer(), F.varchar()])
        assert t.is_struct
        assert t.field_count == 2
        assert t.field_names == ("a", "b")
        assert t.fields[1].index == 1

    def test_field_lookup_case_insensitive(self):
        t = F.struct(["Name"], [F.varchar()])
        assert t.field_by_name("NAME") is not None
        assert t.field_by_name("NAME", case_sensitive=True) is None
        assert t.field_by_name("nope") is None

    def test_struct_of_renumbers(self):
        t1 = F.struct(["a", "b"], [F.integer(), F.integer()])
        t2 = F.struct_of([t1.fields[1], t1.fields[0]])
        assert t2.fields[0].name == "b"
        assert t2.fields[0].index == 0

    def test_struct_mismatched_lengths(self):
        with pytest.raises(ValueError):
            F.struct(["a"], [F.integer(), F.integer()])


class TestLeastRestrictive:
    def test_same_type(self):
        assert F.least_restrictive([F.integer(), F.integer()]) == F.integer()

    def test_numeric_promotion(self):
        assert F.least_restrictive(
            [F.integer(), F.double()]).type_name is SqlTypeName.DOUBLE
        assert F.least_restrictive(
            [F.integer(), F.bigint()]).type_name is SqlTypeName.BIGINT

    def test_nullability_propagates(self):
        t = F.least_restrictive([F.integer(False), F.integer(True)])
        assert t.nullable

    def test_char_types(self):
        t = F.least_restrictive([F.char(5), F.varchar(10)])
        assert t.type_name is SqlTypeName.VARCHAR
        assert t.precision == 10

    def test_null_type_absorbed(self):
        t = F.least_restrictive([F.null_type(), F.integer(False)])
        assert t.type_name is SqlTypeName.INTEGER
        assert t.nullable

    def test_incompatible(self):
        assert F.least_restrictive([F.boolean(), F.varchar()]) is None

    def test_enforce_compatible_raises(self):
        with pytest.raises(TypeCoercionError):
            F.enforce_compatible(F.boolean(), F.integer())

    def test_temporal(self):
        t = F.least_restrictive([F.date(), F.timestamp()])
        assert t.type_name is SqlTypeName.TIMESTAMP

    def test_any_wins(self):
        t = F.least_restrictive([F.any(), F.integer()])
        assert t.type_name is SqlTypeName.ANY

    def test_all_null(self):
        t = F.least_restrictive([F.null_type()])
        assert t.type_name is SqlTypeName.NULL


def test_fresh_factory_independent():
    mine = RelDataTypeFactory()
    assert mine.integer() == F.integer()
