"""Tests for rel-to-SQL generation, dialects, and the Avatica driver."""

import pytest

from repro import Catalog, MemoryTable, Schema, connect
from repro.avatica import ProgrammingError
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.framework import planner_for
from repro.sql import dialect_for, rel_to_sql
from repro.sql.dialect import MysqlDialect, PostgresqlDialect


@pytest.fixture
def roundtrip_env(hr_catalog):
    """The acid test: generated SQL must re-parse and re-execute to the
    same rows (Calcite's "translate the relational expression back to
    SQL" feature)."""
    from repro.adapters.jdbc import MiniDb
    p = planner_for(hr_catalog)
    db = MiniDb()
    hr = hr_catalog.resolve_schema(["hr"])
    for name in ("emps", "depts"):
        t = hr.table(name)
        db.create_table(name, list(t.row_type.field_names), list(t.rows))
    return p, db


QUERIES = [
    "SELECT name, sal FROM hr.emps WHERE sal > 8000",
    "SELECT deptno, COUNT(*) AS c, SUM(sal) AS s FROM hr.emps GROUP BY deptno",
    "SELECT e.name, d.dname FROM hr.emps e JOIN hr.depts d ON e.deptno = d.deptno",
    "SELECT name FROM hr.emps WHERE commission IS NULL",
    "SELECT name, sal FROM hr.emps ORDER BY sal DESC LIMIT 3",
    "SELECT deptno FROM hr.emps UNION SELECT deptno FROM hr.depts",
    "SELECT name FROM hr.emps WHERE sal BETWEEN 7000 AND 11000",
    "SELECT CASE WHEN sal > 9000 THEN 'hi' ELSE 'lo' END AS band FROM hr.emps",
]


class TestRelToSqlRoundtrip:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_generated_sql_reexecutes_identically(self, roundtrip_env, sql):
        p, db = roundtrip_env
        rel = p.rel(sql)
        expected = sorted(p.execute(rel).rows)
        generated = rel_to_sql(rel, "calcite")
        # strip the hr. prefix: MiniDB holds the tables unqualified
        _, rows = db.execute(generated.replace('"hr".', ""))
        assert sorted(rows) == expected


class TestDialects:
    def test_mysql_quoting(self):
        d = MysqlDialect()
        assert d.quote_identifier("name") == "`name`"
        assert d.quote_literal("o'brien") == "'o''brien'"

    def test_postgres_quoting(self):
        d = PostgresqlDialect()
        assert d.quote_identifier("name") == '"name"'

    def test_limit_dialects(self):
        assert MysqlDialect().limit_clause(None, 5) == "LIMIT 5"
        assert "OFFSET 2 ROWS" in dialect_for("ansi").limit_clause(2, 5)
        assert "FETCH NEXT 5 ROWS ONLY" in dialect_for("ansi").limit_clause(2, 5)

    def test_literal_rendering(self):
        d = dialect_for("calcite")
        assert d.quote_literal(None) == "NULL"
        assert d.quote_literal(True) == "TRUE"
        assert d.quote_literal(3.5) == "3.5"

    def test_unknown_dialect(self):
        with pytest.raises(KeyError):
            dialect_for("oracle9i")

    def test_same_rel_multiple_dialects(self, hr_catalog):
        p = planner_for(hr_catalog)
        rel = p.rel("SELECT name FROM hr.emps WHERE sal > 1")
        my = rel_to_sql(rel, "mysql")
        pg = rel_to_sql(rel, "postgresql")
        assert "`name`" in my
        assert '"name"' in pg


class TestAvatica:
    def test_cursor_lifecycle(self, hr_catalog):
        with connect(hr_catalog) as conn:
            cur = conn.cursor()
            cur.execute("SELECT name, sal FROM hr.emps WHERE sal > 9000")
            assert cur.rowcount == 2
            assert [d[0] for d in cur.description] == ["name", "sal"]
            first = cur.fetchone()
            assert first is not None
            rest = cur.fetchall()
            assert len(rest) == 1
            assert cur.fetchone() is None

    def test_fetchmany(self, hr_catalog):
        cur = connect(hr_catalog).execute("SELECT empid FROM hr.emps")
        assert len(cur.fetchmany(2)) == 2
        assert len(cur.fetchmany(10)) == 3

    def test_iteration(self, hr_catalog):
        cur = connect(hr_catalog).execute("SELECT empid FROM hr.emps")
        assert len(list(cur)) == 5

    def test_dynamic_parameters(self, hr_catalog):
        """JDBC-style prepared-statement parameters."""
        conn = connect(hr_catalog)
        cur = conn.execute("SELECT name FROM hr.emps WHERE deptno = ? AND sal > ?",
                           [10, 9000])
        assert sorted(cur.fetchall()) == [("Bill",), ("Theodore",)]
        cur = conn.execute("SELECT name FROM hr.emps WHERE deptno = ? AND sal > ?",
                           [20, 0])
        assert cur.fetchall() == [("Eric",)]

    def test_executemany(self, hr_catalog):
        cur = connect(hr_catalog).cursor()
        cur.executemany("SELECT name FROM hr.emps WHERE deptno = ?", [[10], [20]])
        assert cur.rowcount == 1  # last execution wins

    def test_bad_sql_raises_programming_error(self, hr_catalog):
        with pytest.raises(ProgrammingError):
            connect(hr_catalog).execute("SELEKT oops")
        with pytest.raises(ProgrammingError):
            connect(hr_catalog).execute("SELECT missing FROM hr.emps")

    def test_closed_connection_rejects(self, hr_catalog):
        conn = connect(hr_catalog)
        conn.close()
        with pytest.raises(ProgrammingError):
            conn.cursor()

    def test_closed_cursor_rejects(self, hr_catalog):
        cur = connect(hr_catalog).cursor()
        cur.close()
        with pytest.raises(ProgrammingError):
            cur.execute("SELECT 1")

    def test_rollback_unsupported(self, hr_catalog):
        with pytest.raises(ProgrammingError):
            connect(hr_catalog).rollback()

    def test_commit_noop(self, hr_catalog):
        connect(hr_catalog).commit()

    def test_plan_available_for_inspection(self, hr_catalog):
        cur = connect(hr_catalog).execute("SELECT name FROM hr.emps")
        assert cur.last_plan is not None
        assert "Enumerable" in cur.last_plan.explain()
