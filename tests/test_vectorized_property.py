"""Property-based equivalence of columnar and row expression evaluation.

The vectorized engine's compiled-expression path
(:func:`repro.runtime.vectorized.expr.compile_rex`) must agree with the
row interpreter (:func:`repro.core.rex_eval.evaluate`) on every
expression, including SQL three-valued logic over NULLs.  Hypothesis
generates random rex trees and random columns (with NULLs mixed in) and
cross-checks whole-column evaluation against row-at-a-time evaluation.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import rex as rexmod
from repro.core.rex import RexCall, RexInputRef, literal
from repro.core.rex_eval import RexExecutionError, evaluate
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.runtime.vectorized import ColumnBatch, eval_rex_column

# ---------------------------------------------------------------------------
# Strategies: rows of (int, int|NULL, int|NULL, varchar|NULL)
# ---------------------------------------------------------------------------

N_FIELDS = 4

rows_strategy = st.lists(
    st.tuples(st.integers(-20, 20),
              st.one_of(st.none(), st.integers(-20, 20)),
              st.one_of(st.none(), st.integers(-100, 100)),
              st.one_of(st.none(), st.sampled_from(["a", "b", "cc"]))),
    min_size=0, max_size=25)

_COMPARISONS = [rexmod.EQUALS, rexmod.NOT_EQUALS, rexmod.LESS_THAN,
                rexmod.LESS_THAN_OR_EQUAL, rexmod.GREATER_THAN,
                rexmod.GREATER_THAN_OR_EQUAL]
# DIVIDE/MOD can raise: they exercise the short-circuit contract (an
# operand guarded by AND/OR/CASE/COALESCE must not error on rows the
# guard already decided) as well as value agreement.
_ARITHMETIC = [rexmod.PLUS, rexmod.MINUS, rexmod.TIMES, rexmod.DIVIDE,
               rexmod.MOD]

int_field = st.sampled_from(
    [RexInputRef(0, F.integer(False)), RexInputRef(1, F.integer()),
     RexInputRef(2, F.integer())])

int_expr = st.recursive(
    st.one_of(int_field, st.integers(-30, 30).map(literal)),
    lambda children: st.builds(
        lambda op, a, b: RexCall(op, [a, b]),
        st.sampled_from(_ARITHMETIC), children, children),
    max_leaves=4)

bool_leaf = st.one_of(
    st.builds(lambda op, a, b: RexCall(op, [a, b]),
              st.sampled_from(_COMPARISONS), int_expr, int_expr),
    st.builds(lambda a: RexCall(rexmod.IS_NULL, [a]), int_field),
    st.builds(lambda a: RexCall(rexmod.IS_NOT_NULL, [a]), int_field),
    st.builds(lambda a, lo, hi: RexCall(rexmod.BETWEEN, [a, lo, hi]),
              int_field, st.integers(-20, 0).map(literal),
              st.integers(0, 20).map(literal)),
    st.builds(lambda a, cands: RexCall(rexmod.IN, [a] + cands),
              int_field,
              st.lists(st.one_of(st.none(), st.integers(-20, 20))
                       .map(literal), min_size=1, max_size=4)),
)

bool_expr = st.recursive(
    bool_leaf,
    lambda children: st.one_of(
        st.builds(lambda a, b: RexCall(rexmod.AND, [a, b]), children, children),
        st.builds(lambda a, b: RexCall(rexmod.OR, [a, b]), children, children),
        st.builds(lambda a: RexCall(rexmod.NOT, [a]), children),
    ),
    max_leaves=8)

case_expr = st.builds(
    lambda cond, then, default: RexCall(
        rexmod.CASE, [cond, then, default], F.integer()),
    bool_expr, int_expr, int_expr)

coalesce_expr = st.builds(
    lambda a, b, c: RexCall(rexmod.COALESCE, [a, b, c], F.integer()),
    int_field, int_field, int_expr)

any_expr = st.one_of(bool_expr, int_expr, case_expr, coalesce_expr)


def _assert_columnar_matches_rows(node, rows):
    """Columnar evaluation must agree with row-at-a-time evaluation —
    both on values and on whether evaluation errors at all."""
    try:
        expected = [evaluate(node, row) for row in rows]
        row_error = None
    except RexExecutionError as exc:
        expected, row_error = None, exc
    batch = ColumnBatch.from_rows(rows, N_FIELDS)
    try:
        column = eval_rex_column(node, batch)
        col_error = None
    except RexExecutionError as exc:
        column, col_error = None, exc
    if row_error is not None:
        assert col_error is not None, (
            f"row eval raised {row_error!r} but columnar succeeded: "
            f"{node.digest}")
    else:
        assert col_error is None, (
            f"columnar raised {col_error!r} but row eval succeeded: "
            f"{node.digest}")
        assert column == expected, node.digest


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

class TestColumnarAgreesWithRowEval:
    @given(rows=rows_strategy, node=bool_expr)
    @settings(max_examples=100, deadline=None)
    def test_boolean_trees(self, rows, node):
        _assert_columnar_matches_rows(node, rows)

    @given(rows=rows_strategy, node=int_expr)
    @settings(max_examples=100, deadline=None)
    def test_arithmetic_trees(self, rows, node):
        _assert_columnar_matches_rows(node, rows)

    @pytest.mark.slow
    @given(rows=rows_strategy, node=any_expr)
    @settings(max_examples=300, deadline=None)
    def test_mixed_trees(self, rows, node):
        _assert_columnar_matches_rows(node, rows)


class TestThreeValuedLogicEdgeCases:
    """Exhaustive Kleene truth tables over {TRUE, FALSE, NULL} columns."""

    TRIVALENT = [True, False, None]

    def _column_for(self, node, rows):
        return eval_rex_column(node, ColumnBatch.from_rows(rows, N_FIELDS))

    def test_and_or_truth_tables(self):
        # Column 1 = a, column 2 = b (both nullable); every (a, b) pair.
        rows = [(0, a, b, None)
                for a, b in itertools.product(self.TRIVALENT, repeat=2)]
        a = RexInputRef(1, F.boolean())
        b = RexInputRef(2, F.boolean())
        for op in (rexmod.AND, rexmod.OR):
            node = RexCall(op, [a, b])
            assert self._column_for(node, rows) == \
                [evaluate(node, row) for row in rows]

    def test_not_null_propagation(self):
        rows = [(0, v, None, None) for v in self.TRIVALENT]
        node = RexCall(rexmod.NOT, [RexInputRef(1, F.boolean())])
        assert self._column_for(node, rows) == [False, True, None]

    def test_null_comparison_yields_null(self):
        rows = [(0, None, 5, None), (1, 3, None, None), (2, None, None, None)]
        node = RexCall(rexmod.LESS_THAN,
                       [RexInputRef(1, F.integer()), RexInputRef(2, F.integer())])
        assert self._column_for(node, rows) == [None, None, None]

    def test_and_with_scalar_null_operand(self):
        # A literal NULL operand exercises the scalar/column mixed path.
        rows = [(0, v, None, None) for v in self.TRIVALENT]
        node = RexCall(rexmod.AND,
                       [RexInputRef(1, F.boolean()), literal(None, F.boolean())])
        assert self._column_for(node, rows) == \
            [evaluate(node, row) for row in rows]

    def test_or_with_scalar_null_operand(self):
        rows = [(0, v, None, None) for v in self.TRIVALENT]
        node = RexCall(rexmod.OR,
                       [RexInputRef(1, F.boolean()), literal(None, F.boolean())])
        assert self._column_for(node, rows) == \
            [evaluate(node, row) for row in rows]

    def test_in_with_null_candidates(self):
        rows = [(0, 1, None, None), (0, 9, None, None), (0, None, None, None)]
        node = RexCall(rexmod.IN, [RexInputRef(1, F.integer()),
                                   literal(1), literal(None, F.integer())])
        # 1 IN (1, NULL) → TRUE; 9 IN (1, NULL) → NULL; NULL IN (…) → NULL
        assert self._column_for(node, rows) == [True, None, None]

    def test_case_over_null_conditions(self):
        rows = [(0, v, 7, None) for v in self.TRIVALENT]
        cond = RexCall(rexmod.IS_TRUE, [RexInputRef(1, F.boolean())])
        node = RexCall(rexmod.CASE,
                       [RexInputRef(1, F.boolean()), literal(1),
                        cond, literal(2), literal(3)], F.integer())
        assert self._column_for(node, rows) == \
            [evaluate(node, row) for row in rows]


class TestShortCircuitParity:
    """Guard patterns must not error on rows the guard rejected — the
    row interpreter short-circuits per row; the columnar kernels must
    evaluate guarded operands over exactly the same rows."""

    ROWS = [(0, 10, 2, None), (1, 7, 0, None), (2, 4, 1, None)]

    def _engines(self):
        from repro import Catalog, MemoryTable, Schema
        from repro.framework import planner_for
        catalog = Catalog()
        s = Schema("d")
        catalog.add_schema(s)
        s.add_table(MemoryTable(
            "t", ["k", "a", "b", "note"],
            [F.integer(False), F.integer(), F.integer(), F.varchar()],
            [(0, 10, 2, None), (1, 7, 0, None), (2, None, 1, None)]))
        return planner_for(catalog), planner_for(catalog, engine="vectorized")

    def _agree(self, sql):
        row, vec = self._engines()
        assert sorted(row.execute(sql).rows, key=repr) == \
            sorted(vec.execute(sql).rows, key=repr), sql

    def test_and_guards_division(self):
        self._agree("SELECT a FROM d.t WHERE b <> 0 AND a / b > 1")

    def test_or_guards_division(self):
        self._agree("SELECT k FROM d.t WHERE b = 0 OR a / b > 1")

    def test_case_guards_division(self):
        self._agree("SELECT CASE WHEN b <> 0 THEN a / b ELSE 0 END FROM d.t")

    def test_coalesce_guards_division(self):
        self._agree("SELECT COALESCE(a, 100 / b) FROM d.t")

    def test_unguarded_division_errors_in_both(self):
        row, vec = self._engines()
        sql = "SELECT a / b FROM d.t"
        with pytest.raises(RexExecutionError):
            row.execute(sql)
        with pytest.raises(RexExecutionError):
            vec.execute(sql)


class TestSelectionVectorSemantics:
    def test_compact_applies_selection_once(self):
        batch = ColumnBatch([[1, 2, 3, 4], ["a", "b", "c", "d"]], 4)
        selected = batch.with_selection([1, 3])
        assert selected.live_count == 2
        assert selected.to_rows() == [(2, "b"), (4, "d")]
        compacted = selected.compact()
        assert compacted.is_compact()
        assert compacted.to_rows() == [(2, "b"), (4, "d")]

    def test_eval_over_selected_batch_sees_live_rows_only(self):
        batch = ColumnBatch([[1, 2, 3, 4]], 4).with_selection([0, 2])
        node = RexCall(rexmod.PLUS, [RexInputRef(0, F.integer()), literal(10)])
        assert eval_rex_column(node, batch) == [11, 13]
