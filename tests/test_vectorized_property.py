"""Property-based equivalence of columnar and row expression evaluation.

The vectorized engine's compiled-expression path
(:func:`repro.runtime.vectorized.expr.compile_rex`) must agree with the
row interpreter (:func:`repro.core.rex_eval.evaluate`) on every
expression, including SQL three-valued logic over NULLs.  Hypothesis
generates random rex trees and random columns (with NULLs mixed in) and
cross-checks whole-column evaluation against row-at-a-time evaluation.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import rex as rexmod
from repro.core.rex import RexCall, RexInputRef, literal
from repro.core.rex_eval import RexExecutionError, evaluate
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.runtime.vectorized import ColumnBatch, eval_rex_column

# ---------------------------------------------------------------------------
# Strategies: rows of (int, int|NULL, int|NULL, varchar|NULL)
# ---------------------------------------------------------------------------

N_FIELDS = 4

rows_strategy = st.lists(
    st.tuples(st.integers(-20, 20),
              st.one_of(st.none(), st.integers(-20, 20)),
              st.one_of(st.none(), st.integers(-100, 100)),
              st.one_of(st.none(), st.sampled_from(["a", "b", "cc"]))),
    min_size=0, max_size=25)

_COMPARISONS = [rexmod.EQUALS, rexmod.NOT_EQUALS, rexmod.LESS_THAN,
                rexmod.LESS_THAN_OR_EQUAL, rexmod.GREATER_THAN,
                rexmod.GREATER_THAN_OR_EQUAL]
# DIVIDE/MOD can raise: they exercise the short-circuit contract (an
# operand guarded by AND/OR/CASE/COALESCE must not error on rows the
# guard already decided) as well as value agreement.
_ARITHMETIC = [rexmod.PLUS, rexmod.MINUS, rexmod.TIMES, rexmod.DIVIDE,
               rexmod.MOD]

int_field = st.sampled_from(
    [RexInputRef(0, F.integer(False)), RexInputRef(1, F.integer()),
     RexInputRef(2, F.integer())])

int_expr = st.recursive(
    st.one_of(int_field, st.integers(-30, 30).map(literal)),
    lambda children: st.builds(
        lambda op, a, b: RexCall(op, [a, b]),
        st.sampled_from(_ARITHMETIC), children, children),
    max_leaves=4)

bool_leaf = st.one_of(
    st.builds(lambda op, a, b: RexCall(op, [a, b]),
              st.sampled_from(_COMPARISONS), int_expr, int_expr),
    st.builds(lambda a: RexCall(rexmod.IS_NULL, [a]), int_field),
    st.builds(lambda a: RexCall(rexmod.IS_NOT_NULL, [a]), int_field),
    st.builds(lambda a, lo, hi: RexCall(rexmod.BETWEEN, [a, lo, hi]),
              int_field, st.integers(-20, 0).map(literal),
              st.integers(0, 20).map(literal)),
    st.builds(lambda a, cands: RexCall(rexmod.IN, [a] + cands),
              int_field,
              st.lists(st.one_of(st.none(), st.integers(-20, 20))
                       .map(literal), min_size=1, max_size=4)),
)

bool_expr = st.recursive(
    bool_leaf,
    lambda children: st.one_of(
        st.builds(lambda a, b: RexCall(rexmod.AND, [a, b]), children, children),
        st.builds(lambda a, b: RexCall(rexmod.OR, [a, b]), children, children),
        st.builds(lambda a: RexCall(rexmod.NOT, [a]), children),
    ),
    max_leaves=8)

case_expr = st.builds(
    lambda cond, then, default: RexCall(
        rexmod.CASE, [cond, then, default], F.integer()),
    bool_expr, int_expr, int_expr)

coalesce_expr = st.builds(
    lambda a, b, c: RexCall(rexmod.COALESCE, [a, b, c], F.integer()),
    int_field, int_field, int_expr)

any_expr = st.one_of(bool_expr, int_expr, case_expr, coalesce_expr)


def _assert_columnar_matches_rows(node, rows):
    """Columnar evaluation must agree with row-at-a-time evaluation —
    both on values and on whether evaluation errors at all."""
    try:
        expected = [evaluate(node, row) for row in rows]
        row_error = None
    except RexExecutionError as exc:
        expected, row_error = None, exc
    batch = ColumnBatch.from_rows(rows, N_FIELDS)
    try:
        column = eval_rex_column(node, batch)
        col_error = None
    except RexExecutionError as exc:
        column, col_error = None, exc
    if row_error is not None:
        assert col_error is not None, (
            f"row eval raised {row_error!r} but columnar succeeded: "
            f"{node.digest}")
    else:
        assert col_error is None, (
            f"columnar raised {col_error!r} but row eval succeeded: "
            f"{node.digest}")
        assert column == expected, node.digest


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

class TestColumnarAgreesWithRowEval:
    @given(rows=rows_strategy, node=bool_expr)
    @settings(max_examples=100, deadline=None)
    def test_boolean_trees(self, rows, node):
        _assert_columnar_matches_rows(node, rows)

    @given(rows=rows_strategy, node=int_expr)
    @settings(max_examples=100, deadline=None)
    def test_arithmetic_trees(self, rows, node):
        _assert_columnar_matches_rows(node, rows)

    @pytest.mark.slow
    @given(rows=rows_strategy, node=any_expr)
    @settings(max_examples=300, deadline=None)
    def test_mixed_trees(self, rows, node):
        _assert_columnar_matches_rows(node, rows)


class TestThreeValuedLogicEdgeCases:
    """Exhaustive Kleene truth tables over {TRUE, FALSE, NULL} columns."""

    TRIVALENT = [True, False, None]

    def _column_for(self, node, rows):
        return eval_rex_column(node, ColumnBatch.from_rows(rows, N_FIELDS))

    def test_and_or_truth_tables(self):
        # Column 1 = a, column 2 = b (both nullable); every (a, b) pair.
        rows = [(0, a, b, None)
                for a, b in itertools.product(self.TRIVALENT, repeat=2)]
        a = RexInputRef(1, F.boolean())
        b = RexInputRef(2, F.boolean())
        for op in (rexmod.AND, rexmod.OR):
            node = RexCall(op, [a, b])
            assert self._column_for(node, rows) == \
                [evaluate(node, row) for row in rows]

    def test_not_null_propagation(self):
        rows = [(0, v, None, None) for v in self.TRIVALENT]
        node = RexCall(rexmod.NOT, [RexInputRef(1, F.boolean())])
        assert self._column_for(node, rows) == [False, True, None]

    def test_null_comparison_yields_null(self):
        rows = [(0, None, 5, None), (1, 3, None, None), (2, None, None, None)]
        node = RexCall(rexmod.LESS_THAN,
                       [RexInputRef(1, F.integer()), RexInputRef(2, F.integer())])
        assert self._column_for(node, rows) == [None, None, None]

    def test_and_with_scalar_null_operand(self):
        # A literal NULL operand exercises the scalar/column mixed path.
        rows = [(0, v, None, None) for v in self.TRIVALENT]
        node = RexCall(rexmod.AND,
                       [RexInputRef(1, F.boolean()), literal(None, F.boolean())])
        assert self._column_for(node, rows) == \
            [evaluate(node, row) for row in rows]

    def test_or_with_scalar_null_operand(self):
        rows = [(0, v, None, None) for v in self.TRIVALENT]
        node = RexCall(rexmod.OR,
                       [RexInputRef(1, F.boolean()), literal(None, F.boolean())])
        assert self._column_for(node, rows) == \
            [evaluate(node, row) for row in rows]

    def test_in_with_null_candidates(self):
        rows = [(0, 1, None, None), (0, 9, None, None), (0, None, None, None)]
        node = RexCall(rexmod.IN, [RexInputRef(1, F.integer()),
                                   literal(1), literal(None, F.integer())])
        # 1 IN (1, NULL) → TRUE; 9 IN (1, NULL) → NULL; NULL IN (…) → NULL
        assert self._column_for(node, rows) == [True, None, None]

    def test_case_over_null_conditions(self):
        rows = [(0, v, 7, None) for v in self.TRIVALENT]
        cond = RexCall(rexmod.IS_TRUE, [RexInputRef(1, F.boolean())])
        node = RexCall(rexmod.CASE,
                       [RexInputRef(1, F.boolean()), literal(1),
                        cond, literal(2), literal(3)], F.integer())
        assert self._column_for(node, rows) == \
            [evaluate(node, row) for row in rows]


class TestShortCircuitParity:
    """Guard patterns must not error on rows the guard rejected — the
    row interpreter short-circuits per row; the columnar kernels must
    evaluate guarded operands over exactly the same rows."""

    ROWS = [(0, 10, 2, None), (1, 7, 0, None), (2, 4, 1, None)]

    def _engines(self):
        from repro import Catalog, MemoryTable, Schema
        from repro.framework import planner_for
        catalog = Catalog()
        s = Schema("d")
        catalog.add_schema(s)
        s.add_table(MemoryTable(
            "t", ["k", "a", "b", "note"],
            [F.integer(False), F.integer(), F.integer(), F.varchar()],
            [(0, 10, 2, None), (1, 7, 0, None), (2, None, 1, None)]))
        return planner_for(catalog), planner_for(catalog, engine="vectorized")

    def _agree(self, sql):
        row, vec = self._engines()
        assert sorted(row.execute(sql).rows, key=repr) == \
            sorted(vec.execute(sql).rows, key=repr), sql

    def test_and_guards_division(self):
        self._agree("SELECT a FROM d.t WHERE b <> 0 AND a / b > 1")

    def test_or_guards_division(self):
        self._agree("SELECT k FROM d.t WHERE b = 0 OR a / b > 1")

    def test_case_guards_division(self):
        self._agree("SELECT CASE WHEN b <> 0 THEN a / b ELSE 0 END FROM d.t")

    def test_coalesce_guards_division(self):
        self._agree("SELECT COALESCE(a, 100 / b) FROM d.t")

    def test_unguarded_division_errors_in_both(self):
        row, vec = self._engines()
        sql = "SELECT a / b FROM d.t"
        with pytest.raises(RexExecutionError):
            row.execute(sql)
        with pytest.raises(RexExecutionError):
            vec.execute(sql)


class TestWindowAgainstNaiveOracle:
    """Random partition/order keys and ROWS frames: both engines must
    equal a naive per-row oracle written from the SQL definitions
    (rank = 1 + rows strictly before; frame = a slice of the ordered
    partition), not from either engine's implementation."""

    FRAMES = [
        None,  # parser default: ROWS UNBOUNDED PRECEDING .. CURRENT ROW
        ("UNBOUNDED PRECEDING", "CURRENT ROW"),
        ("2 PRECEDING", "CURRENT ROW"),
        ("1 PRECEDING", "3 FOLLOWING"),
        ("CURRENT ROW", "UNBOUNDED FOLLOWING"),
        ("UNBOUNDED PRECEDING", "UNBOUNDED FOLLOWING"),
    ]

    window_rows = st.lists(
        st.tuples(st.integers(0, 3),                            # k
                  st.one_of(st.none(), st.integers(0, 5)),      # o
                  st.one_of(st.none(), st.integers(-9, 9))),    # v
        min_size=0, max_size=30)

    @staticmethod
    def _engines(rows):
        from repro import Catalog, MemoryTable, Schema
        from repro.framework import planner_for
        catalog = Catalog()
        d = Schema("d")
        catalog.add_schema(d)
        d.add_table(MemoryTable(
            "t", ["id", "k", "o", "v"],
            [F.integer(False), F.integer(False), F.integer(), F.integer()],
            [(i,) + r for i, r in enumerate(rows)]))
        return planner_for(catalog), planner_for(catalog, engine="vectorized")

    @staticmethod
    def _bound(spec, pos, m):
        if spec == "UNBOUNDED PRECEDING":
            return 0
        if spec == "UNBOUNDED FOLLOWING":
            return m - 1
        if spec == "CURRENT ROW":
            return pos
        count, kind = spec.split(" ", 1)
        return pos - int(count) if kind == "PRECEDING" else pos + int(count)

    @staticmethod
    def _order_key(o, desc):
        # NULLS LAST ascending / NULLS FIRST descending (SQL default);
        # sorted(..., reverse=True) is stable, preserving input order
        # among peers exactly like the engines.
        return (o is None, 0 if o is None else o)

    def _oracle(self, rows, func, partition, desc, frame):
        n = len(rows)
        out = [None] * n
        groups = {}
        for i, (k, _o, _v) in enumerate(rows):
            groups.setdefault(k if partition else 0, []).append(i)
        lo_s, hi_s = frame or ("UNBOUNDED PRECEDING", "CURRENT ROW")
        for idx in groups.values():
            ordered = sorted(idx, key=lambda i: self._order_key(rows[i][1], desc),
                             reverse=desc)
            m = len(ordered)
            keys = [self._order_key(rows[i][1], desc) for i in ordered]
            for pos, i in enumerate(ordered):
                if func == "ROW_NUMBER()":
                    out[i] = pos + 1
                elif func == "RANK()":
                    out[i] = 1 + sum(1 for p in range(m) if keys[p] != keys[pos]
                                     and p < pos)
                elif func == "DENSE_RANK()":
                    out[i] = 1 + len({tuple(keys[p]) for p in range(pos)
                                      if keys[p] != keys[pos]})
                elif func == "LAG(v)":
                    out[i] = rows[ordered[pos - 1]][2] if pos >= 1 else None
                elif func == "LEAD(v, 2, -1)":
                    out[i] = (rows[ordered[pos + 2]][2]
                              if pos + 2 < m else -1)
                else:
                    lo = max(self._bound(lo_s, pos, m), 0)
                    hi = min(self._bound(hi_s, pos, m), m - 1)
                    frame_idx = ordered[lo: hi + 1] if lo <= hi else []
                    window = [rows[j][2] for j in frame_idx
                              if rows[j][2] is not None]
                    if func == "COUNT(v)":
                        out[i] = len(window)
                    elif func == "SUM(v)":
                        out[i] = sum(window) if window else None
                    elif func == "MIN(v)":
                        out[i] = min(window) if window else None
                    elif func == "MAX(v)":
                        out[i] = max(window) if window else None
                    else:  # AVG(v)
                        out[i] = (sum(window) / len(window)
                                  if window else None)
        return out

    @given(rows=window_rows,
           func=st.sampled_from(["ROW_NUMBER()", "RANK()", "DENSE_RANK()",
                                 "LAG(v)", "LEAD(v, 2, -1)", "SUM(v)",
                                 "COUNT(v)", "MIN(v)", "MAX(v)", "AVG(v)"]),
           partition=st.booleans(), desc=st.booleans(),
           frame=st.sampled_from(FRAMES))
    @settings(max_examples=60, deadline=None)
    def test_window_matches_oracle(self, rows, func, partition, desc, frame):
        if func in ("ROW_NUMBER()", "RANK()", "DENSE_RANK()",
                    "LAG(v)", "LEAD(v, 2, -1)"):
            frame = None  # frame-free functions; keep the SQL minimal
        # Ties among peers are broken by input order in the engines
        # (stable sorts) and in the oracle alike; RANK/DENSE_RANK must
        # NOT get a unique tiebreak or no peers would ever exist.
        order = "ORDER BY o DESC" if desc else "ORDER BY o"
        spec = ["PARTITION BY k"] if partition else []
        spec.append(order)
        if frame is not None:
            spec.append(f"ROWS BETWEEN {frame[0]} AND {frame[1]}")
        sql = f"SELECT id, {func} OVER ({' '.join(spec)}) FROM d.t"
        row_p, vec_p = self._engines(rows)
        expected = self._oracle(rows, func, partition, desc, frame)
        got_row = dict(row_p.execute(sql).rows)
        got_vec = dict(vec_p.execute(sql).rows)
        oracle = {i: expected[i] for i in range(len(rows))}
        assert got_vec == got_row
        assert got_vec == oracle, sql


class TestDistinctSetOpsAreSetSemantics:
    """Distinct UNION/INTERSECT/EXCEPT must equal Python set algebra —
    no duplicates, no dropped rows — at every parallelism, where the
    parallel plans hash-exchange on the full row and dedup per worker."""

    pair_rows = st.lists(
        st.tuples(st.integers(0, 4), st.one_of(st.none(), st.integers(0, 3))),
        min_size=0, max_size=25)

    @staticmethod
    def _planners(left, right):
        from repro import Catalog, MemoryTable, Schema
        from repro.framework import FrameworkConfig, Planner
        catalog = Catalog()
        d = Schema("d")
        catalog.add_schema(d)
        types = [F.integer(False), F.integer()]
        d.add_table(MemoryTable("l", ["a", "b"], types, left))
        d.add_table(MemoryTable("r", ["a", "b"], types, right))
        return [Planner(FrameworkConfig(catalog)),
                Planner(FrameworkConfig(catalog, engine="vectorized")),
                Planner(FrameworkConfig(catalog, engine="vectorized",
                                        parallelism=2)),
                Planner(FrameworkConfig(catalog, engine="vectorized",
                                        parallelism=4))]

    @given(left=pair_rows, right=pair_rows,
           op=st.sampled_from(["UNION", "INTERSECT", "EXCEPT"]))
    @settings(max_examples=40, deadline=None)
    def test_set_ops_match_python_sets(self, left, right, op):
        expected = {
            "UNION": set(left) | set(right),
            "INTERSECT": set(left) & set(right),
            "EXCEPT": set(left) - set(right),
        }[op]
        sql = f"SELECT a, b FROM d.l {op} SELECT a, b FROM d.r"
        for planner in self._planners(left, right):
            rows = planner.execute(sql).rows
            assert len(rows) == len(set(rows)), "duplicates survived dedup"
            assert set(rows) == expected, sql


class TestSelectionVectorSemantics:
    def test_compact_applies_selection_once(self):
        batch = ColumnBatch([[1, 2, 3, 4], ["a", "b", "c", "d"]], 4)
        selected = batch.with_selection([1, 3])
        assert selected.live_count == 2
        assert selected.to_rows() == [(2, "b"), (4, "d")]
        compacted = selected.compact()
        assert compacted.is_compact()
        assert compacted.to_rows() == [(2, "b"), (4, "d")]

    def test_eval_over_selected_batch_sees_live_rows_only(self):
        batch = ColumnBatch([[1, 2, 3, 4]], 4).with_selection([0, 2])
        node = RexCall(rexmod.PLUS, [RexInputRef(0, F.integer()), literal(10)])
        assert eval_rex_column(node, batch) == [11, 13]
