"""White-box tests of the Volcano planner's equivalence machinery."""

import pytest

from repro.core import rex as rexmod
from repro.core.builder import RelBuilder
from repro.core.rel import Filter, LogicalFilter, RelNode
from repro.core.rex import RexCall, RexInputRef, literal
from repro.core.rule import RelOptRule, any_operand
from repro.core.rules import FilterMergeRule, FilterSimplifyRule
from repro.core.traits import Convention, RelTraitSet
from repro.core.types import DEFAULT_TYPE_FACTORY as F
from repro.core.volcano import RelSubset, VolcanoPlanner
from repro.runtime import enumerable_rules


def scan(hr_catalog):
    return RelBuilder(hr_catalog).scan("hr", "emps").build()


def cond(index, value):
    return RexCall(rexmod.GREATER_THAN, [RexInputRef(index, F.integer()),
                                         literal(value)])


class TestRegistration:
    def test_inputs_become_subsets(self, hr_catalog):
        planner = VolcanoPlanner(rules=[])
        rel = LogicalFilter(scan(hr_catalog), cond(3, 1))
        planner.register(rel)
        filter_set = None
        for s in planner.sets:
            for member in s.rels:
                if isinstance(member, Filter):
                    filter_set = s
                    assert isinstance(member.inputs[0], RelSubset)
        assert filter_set is not None

    def test_subset_digest_canonicalises(self, hr_catalog):
        planner = VolcanoPlanner(rules=[])
        subset = planner.register(scan(hr_catalog))
        assert subset.digest.startswith("Subset#")
        assert subset.row_type.field_count == 5

    def test_registration_count(self, hr_catalog):
        planner = VolcanoPlanner(rules=[])
        rel = LogicalFilter(scan(hr_catalog), cond(3, 1))
        planner.register(rel)
        assert planner.registrations == 2  # scan + filter


class TestSetMerging:
    def test_duplicate_digest_merges_sets(self, hr_catalog):
        """The paper's §6 scenario: a rule produces an expression whose
        digest matches one in a different set → sets merge."""

        class RewriteTo5000(RelOptRule):
            """Rewrites filter(>$3, 4999+1) to filter(>$3, 5000)."""

            def __init__(self):
                super().__init__(any_operand(Filter), "RewriteTo5000")

            def matches(self, call):
                return "4999" in call.rel(0).condition.digest

            def on_match(self, call):
                call.transform_to(
                    call.rel(0).with_condition(cond(3, 5000)))

        planner = VolcanoPlanner(rules=[RewriteTo5000()])
        base = scan(hr_catalog)
        # two independently-registered equivalent queries
        rel_a = LogicalFilter(base, RexCall(rexmod.GREATER_THAN, [
            RexInputRef(3, F.integer()),
            literal(4999)]))
        rel_b = LogicalFilter(base.copy(), cond(3, 5000))
        subset_a = planner.register(rel_a)
        subset_b = planner.register(rel_b)
        assert subset_a.rel_set.canonical() is not subset_b.rel_set.canonical()
        # Fire the queue: rewriting a's condition to 5000... a's filter is
        # >($3, 4999); rewrite creates >($3, 5000) in a's set, whose digest
        # collides with b's filter → merge.
        try:
            planner.optimize(rel_a, RelTraitSet(Convention.NONE))
        except Exception:
            pass
        assert subset_a.rel_set.canonical() is subset_b.rel_set.canonical()

    def test_merged_set_members_shared(self, hr_catalog):
        planner = VolcanoPlanner(
            rules=[FilterSimplifyRule()] + enumerable_rules())
        base = scan(hr_catalog)
        folded = RexCall(rexmod.GREATER_THAN, [
            RexInputRef(3, F.integer()),
            RexCall(rexmod.PLUS, [literal(4000), literal(1000)])])
        rel_a = LogicalFilter(base, folded)
        rel_b = LogicalFilter(base.copy(), cond(3, 5000))
        sub_a = planner.register(rel_a)
        planner.register(rel_b)
        best = planner.optimize(rel_a)
        # after simplification both queries share one equivalence set
        canon = sub_a.rel_set.canonical()
        digests = {r.digest for r in canon.rels}
        assert any("5000" in d for d in digests)
        from repro.runtime.operators import execute_to_list
        assert sorted(execute_to_list(best)) == sorted(execute_to_list(rel_b))


class TestCostSelection:
    def test_best_prefers_cheaper_member(self, hr_catalog):
        """Two equivalent filters; after FilterMerge the single-filter
        form must be selected over the stacked pair."""
        planner = VolcanoPlanner(
            rules=[FilterMergeRule()] + enumerable_rules())
        base = scan(hr_catalog)
        stacked = LogicalFilter(LogicalFilter(base, cond(3, 1)), cond(3, 2))
        best = planner.optimize(stacked)
        # exactly one Filter in the winning plan
        text = best.explain()
        assert text.count("Filter") == 1

    def test_infinite_cost_without_implementation(self, hr_catalog):
        from repro.core.volcano import CannotPlanError
        planner = VolcanoPlanner(rules=[])  # no converters at all
        rel = LogicalFilter(scan(hr_catalog), cond(3, 1))
        with pytest.raises(CannotPlanError):
            planner.optimize(rel)

    def test_max_matches_bounds_search(self, hr_catalog):
        from repro.core.rules import join_reorder_rules, standard_logical_rules
        b = RelBuilder(hr_catalog)
        b.scan("hr", "emps").scan("hr", "depts")
        from repro.core.rel import JoinRelType
        rel = b.join_using(JoinRelType.INNER, "deptno").build()
        planner = VolcanoPlanner(
            rules=standard_logical_rules() + join_reorder_rules()
            + enumerable_rules(),
            max_matches=25)
        planner.optimize(rel)
        assert planner.matches_fired <= 25


class TestDistributionEnforcement:
    """The distribution trait is enforced at extraction: when no
    registered expression carries the required distribution, the
    planner extracts the relaxed best plan and hands it to the
    configured enforcer (which wraps it in a gather exchange)."""

    def _required(self):
        from repro.core.traits import (
            RelCollation,
            RelDistribution,
            RelTraitSet,
        )
        return RelTraitSet(Convention.ENUMERABLE, RelCollation.EMPTY,
                           RelDistribution.SINGLETON)

    def test_enforcer_wraps_relaxed_best(self, hr_catalog):
        from repro.core.rel import Converter
        from repro.core.traits import RelDistribution
        calls = []

        def enforcer(plan, distribution):
            calls.append(distribution)
            return Converter(plan, plan.traits.replace(distribution))

        planner = VolcanoPlanner(rules=enumerable_rules(),
                                 distribution_enforcer=enforcer)
        rel = LogicalFilter(scan(hr_catalog), cond(3, 1))
        best = planner.optimize(rel, self._required())
        assert calls == [RelDistribution.SINGLETON]
        assert isinstance(best, Converter)
        assert best.traits.distribution == RelDistribution.SINGLETON
        # the wrapped plan is the ordinary enumerable best
        assert "EnumerableFilter" in best.input.explain()

    def test_without_enforcer_distribution_is_unplannable(self, hr_catalog):
        from repro.core.volcano import CannotPlanError
        planner = VolcanoPlanner(rules=enumerable_rules())
        rel = LogicalFilter(scan(hr_catalog), cond(3, 1))
        with pytest.raises(CannotPlanError):
            planner.optimize(rel, self._required())
