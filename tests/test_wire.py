"""The columnar wire format: hypothesis round-trip properties.

The contract pinned here is the one :mod:`repro.runtime.vectorized.wire`
promises to the process-backed exchange edges: for any engine batch,
``decode_batch(encode_batch(b))`` is a *compact* batch whose rows equal
``b.compact().to_rows()`` with value types preserved — ints stay ints,
floats stay floats, bools stay bools, None stays None — across every
column encoding (typed int/float/str columns, nullable variants, and
the tagged fallback for mixed/exotic columns).
"""

import io
import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.vectorized.batch import ColumnBatch
from repro.runtime.vectorized.wire import (
    MAGIC,
    VERSION,
    decode_batch,
    encode_batch,
    pack_frame,
    read_frame,
)

INT64_MIN = -(2 ** 63)
INT64_MAX = 2 ** 63 - 1

# -- value strategies ---------------------------------------------------------

ints64 = st.integers(min_value=INT64_MIN, max_value=INT64_MAX)
bigints = st.one_of(
    st.integers(min_value=INT64_MAX + 1, max_value=INT64_MAX + 2 ** 70),
    st.integers(min_value=INT64_MIN - 2 ** 70, max_value=INT64_MIN - 1))
floats = st.floats(allow_nan=False)  # NaN breaks ==; pinned separately below
texts = st.text(max_size=30)
scalars = st.one_of(
    st.none(), st.booleans(), ints64, bigints, floats, texts,
    st.binary(max_size=20))


def column(values: st.SearchStrategy, n: int) -> st.SearchStrategy:
    return st.lists(values, min_size=n, max_size=n)


@st.composite
def batches(draw) -> ColumnBatch:
    """Batches over every column shape the engine produces: homogeneous
    typed columns, nullable variants, and mixed (tagged) columns —
    optionally wearing a selection vector."""
    n = draw(st.integers(min_value=0, max_value=25))
    field_count = draw(st.integers(min_value=0, max_value=5))
    per_column = st.one_of(
        column(ints64, n),
        column(st.one_of(st.none(), ints64), n),
        column(floats, n),
        column(st.one_of(st.none(), floats), n),
        column(texts, n),
        column(st.one_of(st.none(), texts), n),
        column(scalars, n),
    )
    cols = [draw(per_column) for _ in range(field_count)]
    batch = ColumnBatch(cols, n)
    if n and draw(st.booleans()):
        sel = draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                            max_size=n, unique=True).map(sorted))
        batch = batch.with_selection(sel)
    return batch


# -- the round-trip property --------------------------------------------------

@given(batches())
@settings(max_examples=300, deadline=None)
def test_roundtrip_preserves_rows_and_types(batch):
    decoded = decode_batch(encode_batch(batch))
    expected = batch.compact().to_rows()
    assert decoded.is_compact()
    assert decoded.field_count == batch.field_count
    assert decoded.num_rows == batch.live_count
    got = decoded.to_rows()
    assert got == expected
    # == alone conflates 1/1.0/True; the wire must not.
    assert [[type(v) for v in row] for row in got] == \
        [[type(v) for v in row] for row in expected]


@given(st.lists(st.tuples(ints64, floats, texts), max_size=50))
@settings(max_examples=100, deadline=None)
def test_roundtrip_from_rows(rows):
    """The common path: a typed batch built straight from row tuples."""
    batch = ColumnBatch.from_rows(rows, 3)
    assert decode_batch(encode_batch(batch)).to_rows() == rows


@given(st.integers(min_value=0, max_value=6),
       st.integers(min_value=0, max_value=10))
@settings(max_examples=50, deadline=None)
def test_roundtrip_degenerate_shapes(field_count, num_rows):
    """Zero-row and zero-field batches keep their dimensions (the
    zero-field case matters: ``num_rows`` survives even though no
    column data crosses the wire)."""
    cols = [[0] * num_rows for _ in range(field_count)]
    decoded = decode_batch(encode_batch(ColumnBatch(cols, num_rows)))
    assert decoded.field_count == field_count
    assert decoded.num_rows == num_rows


@given(st.lists(ints64, min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_selection_applied_at_encode(values):
    """Only live rows cross the wire: an empty selection encodes to the
    same frame as an empty batch, and a partial selection matches the
    compacted equivalent byte for byte."""
    n = len(values)
    batch = ColumnBatch([values], n)
    sel = list(range(0, n, 2))
    assert encode_batch(batch.with_selection(sel)) == \
        encode_batch(batch.compact() if sel == list(range(n))
                     else ColumnBatch([[values[i] for i in sel]], len(sel)))
    assert decode_batch(encode_batch(
        ColumnBatch([values], n, selection=[]))).num_rows == 0


# -- pinned unit cases --------------------------------------------------------

class TestWireEdges:
    def test_nan_and_infinities(self):
        batch = ColumnBatch([[float("nan"), float("inf"), float("-inf")]], 3)
        got = decode_batch(encode_batch(batch)).columns[0]
        assert math.isnan(got[0])
        assert got[1] == float("inf") and got[2] == float("-inf")

    def test_bools_do_not_collapse_to_ints(self):
        batch = ColumnBatch([[True, False, 1, 0]], 4)
        got = decode_batch(encode_batch(batch)).columns[0]
        assert got == [True, False, 1, 0]
        assert [type(v) for v in got] == [bool, bool, int, int]

    def test_exotic_scalars_use_pickle_escape_hatch(self):
        exotic = {"loc": [1.5, 2.5], "city": "X"}  # a Mongo _MAP value
        batch = ColumnBatch([[exotic, None]], 2)
        assert decode_batch(encode_batch(batch)).columns[0] == [exotic, None]

    def test_corrupt_magic_rejected(self):
        frame = bytearray(encode_batch(ColumnBatch([[1]], 1)))
        assert frame[0] == MAGIC and frame[1] == VERSION
        frame[0] ^= 0xFF
        with pytest.raises(ValueError, match="corrupt wire frame"):
            decode_batch(bytes(frame))

    def test_unknown_version_rejected(self):
        frame = bytearray(encode_batch(ColumnBatch([[1]], 1)))
        frame[1] = VERSION + 1
        with pytest.raises(ValueError, match="corrupt wire frame"):
            decode_batch(bytes(frame))

    def test_frame_framing_roundtrip(self):
        payloads = [b"", b"x", encode_batch(ColumnBatch([[1, 2]], 2))]
        stream = io.BytesIO(b"".join(pack_frame(p) for p in payloads))
        got = []
        while (frame := read_frame(stream.read)) is not None:
            got.append(frame)
        assert got == payloads

    def test_truncated_frame_raises_eof(self):
        whole = pack_frame(b"abcdef")
        with pytest.raises(EOFError, match="truncated"):
            read_frame(io.BytesIO(whole[:-2]).read)
        with pytest.raises(EOFError, match="truncated"):
            read_frame(io.BytesIO(whole[:2]).read)

    def test_header_layout_is_stable(self):
        """The header is part of the wire contract: magic, version,
        field count (u16) and row count (u32), little-endian."""
        frame = encode_batch(ColumnBatch([[7], ["a"]], 1))
        assert struct.unpack_from("<BBHI", frame, 0) == (MAGIC, VERSION, 2, 1)
